// The Resource Manager's information base (§3.1).
//
// Everything an RM knows about its domain: members and their profiled
// loads (l_i, bw_i), the application objects O_ij and services S_ij, the
// resource graph G_r, and the service graphs of currently executing tasks.
// The whole structure snapshots/restores for backup-RM synchronization.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include <set>

#include "core/load_index.hpp"
#include "core/messages.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "fairness/fairness.hpp"
#include "gossip/summary.hpp"
#include "graph/path_cache.hpp"
#include "graph/resource_graph.hpp"
#include "graph/service_graph.hpp"
#include "overlay/domain.hpp"
#include "overlay/membership.hpp"

namespace p2prm::core {

struct ObjectLocation {
  util::PeerId peer;
  media::MediaObject object;
};

struct ActiveTask {
  graph::ServiceGraph sg;
  QoSRequirements q;
  util::PeerId origin;
  util::SimTime submitted_at = 0;
  util::SimTime absolute_deadline = 0;
  std::vector<bool> hop_done;
  int recompositions = 0;  // failure-recovery / reassignment count
  // The admission-time execution estimate, kept so a retried TaskQuery can
  // be answered with the original TaskAccept contents.
  util::SimDuration estimated_execution = -1;

  [[nodiscard]] bool all_hops_done() const;
  [[nodiscard]] std::optional<std::size_t> first_pending_hop() const;
};

// Serializable copy of the info base shipped to the backup RM (§4.1: the
// backup keeps "an up-to-date copy of all the information the Resource
// Manager stores").
struct InfoBaseSnapshot {
  overlay::Domain domain;
  std::vector<std::pair<util::PeerId, std::vector<media::MediaObject>>> objects;
  std::vector<std::pair<util::PeerId, std::vector<ServiceOffering>>> services;
  std::vector<ActiveTask> tasks;
  std::uint64_t summary_version = 0;

  [[nodiscard]] std::size_t wire_size() const;
  void encode(net::Writer& w) const;
  [[nodiscard]] static InfoBaseSnapshot decode(net::Reader& r);
};

struct BackupSync final : net::Message {
  InfoBaseSnapshot snapshot;
  // The RMs of other domains, so a takeover RM can resume gossiping.
  std::vector<overlay::RmInfo> known_rms;
  // Monotonic per-RM sequence; acked by the backup so a lost snapshot is
  // retried instead of leaving the backup a full sync period stale.
  std::uint64_t seq = 0;
  static constexpr net::WireType kType = net::WireType::BackupSync;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + snapshot.wire_size() + 4 +
           known_rms.size() * 16 + 8;
  }
  std::string_view type_name() const override { return "core.backup_sync"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static BackupSync decode_body(net::Reader& r);
};

// Backup RM -> primary RM: acknowledges BackupSync `seq` (when
// SystemConfig::ack_backup_sync is on).
struct BackupSyncAck final : net::Message {
  std::uint64_t seq = 0;

  static constexpr net::WireType kType = net::WireType::BackupSyncAck;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 8; }
  std::string_view type_name() const override {
    return "core.backup_sync_ack";
  }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static BackupSyncAck decode_body(net::Reader& r);
};

class InfoBase {
 public:
  InfoBase() = default;
  InfoBase(util::DomainId domain, util::PeerId rm);

  // --- membership & inventory ------------------------------------------------
  void add_member(const overlay::PeerSpec& spec, util::SimTime now);
  void add_inventory(const PeerAnnounce& announce);
  // Removes the peer, its objects and its G_r edges. Returns the ids of
  // active tasks whose service graph involved the peer (§4.1: these must
  // be repaired).
  std::vector<util::TaskId> remove_peer(util::PeerId peer);

  void record_report(util::PeerId peer, const ProfilerReport& report,
                     util::SimTime now);

  // --- load accounting ----------------------------------------------------------
  // Effective load = last reported smoothed load + outstanding commitments
  // the RM has made (so back-to-back allocations do not dog-pile one peer).
  // A commitment expires after `ttl` — by then the work shows up in the
  // peer's own reports — or earlier via release_load (hop finished). Expiry
  // must be time-based, not cleared-on-report: profiler reports can arrive
  // faster than composed work reaches the peer's CPU.
  [[nodiscard]] double effective_load(util::PeerId peer) const;
  void commit_load(util::PeerId peer, double ops_rate,
                   util::SimTime now = 0,
                   util::SimDuration ttl = util::seconds(3));
  void release_load(util::PeerId peer, double ops_rate);
  // Drops expired commitments; call with the current time before reading
  // loads in bulk (record_report and the adaptation loop do).
  void purge_commitments(util::SimTime now);

  // Measured mean execution time (seconds) of a service type on a peer, as
  // propagated in profiler reports; < 0 when no measurement exists.
  [[nodiscard]] double measured_execution_s(util::PeerId peer,
                                            std::uint64_t type_key) const;
  [[nodiscard]] const fairness::IncrementalFairness& fairness() const {
    return fairness_;
  }
  [[nodiscard]] double current_fairness() const { return fairness_.index(); }

  // Load-sorted member view, maintained incrementally at every point where
  // a peer's effective load changes. Admission's overload and mean-
  // utilization checks read this instead of rescanning the domain.
  [[nodiscard]] const LoadIndex& load_index() const { return load_index_; }

  // --- object & service lookup ---------------------------------------------------
  [[nodiscard]] const std::vector<ObjectLocation>* locations(
      util::ObjectId object) const;
  [[nodiscard]] std::vector<util::ObjectId> all_objects() const;

  // --- tasks ---------------------------------------------------------------------
  ActiveTask& add_task(ActiveTask task);
  [[nodiscard]] ActiveTask* task(util::TaskId id);
  [[nodiscard]] const ActiveTask* task(util::TaskId id) const;
  void remove_task(util::TaskId id);
  // Re-derives the participant index of `id` from its current service
  // graph. Must be called after mutating a stored task's sg in place
  // (recovery swaps the whole graph).
  void reindex_task(util::TaskId id);
  [[nodiscard]] std::vector<util::TaskId> tasks_involving(
      util::PeerId peer) const;
  [[nodiscard]] std::vector<util::TaskId> running_task_ids() const;
  [[nodiscard]] std::size_t task_count() const { return task_index_.size(); }

  // --- summaries (§3.1 SumO / SumS) ---------------------------------------------
  [[nodiscard]] gossip::DomainSummary build_summary(
      std::size_t bloom_bits, std::size_t bloom_hashes) const;
  // Fixed-size hierarchical digest of the domain. Scalar fields (count,
  // totals, min utilization) are copied verbatim from the incrementally
  // maintained LoadIndex — the exact values legacy admission reads — so
  // aggregate-path decisions are bit-identical; only the histograms and
  // the max are derived per build. O(domain size).
  [[nodiscard]] gossip::DomainAggregate build_aggregate() const;
  void bump_summary_version() { ++summary_version_; }
  [[nodiscard]] std::uint64_t summary_version() const { return summary_version_; }

  // --- backup sync ------------------------------------------------------------------
  [[nodiscard]] InfoBaseSnapshot snapshot() const;
  void restore(const InfoBaseSnapshot& snap);

  [[nodiscard]] overlay::Domain& domain() { return domain_; }
  [[nodiscard]] const overlay::Domain& domain() const { return domain_; }
  [[nodiscard]] graph::ResourceGraph& resource_graph() { return gr_; }
  [[nodiscard]] const graph::ResourceGraph& resource_graph() const { return gr_; }

  // Memoized Figure 3 enumerations over gr_, invalidated by its epoch.
  // Mutable: serving a query from cache does not change what the RM knows.
  [[nodiscard]] graph::PathCache& path_cache() const { return path_cache_; }

 private:
  void rebuild_fairness();
  // Push `peer`'s current effective load into the fairness and load
  // indices; the single choke point every load-changing mutation funnels
  // through, so the indices can never drift from effective_load().
  void refresh_load(util::PeerId peer);
  void index_task(const ActiveTask& t);
  void unindex_task(const ActiveTask& t);

  overlay::Domain domain_;
  graph::ResourceGraph gr_;
  // Object and task tables are open-addressing (util::FlatMap): every task
  // query probes them, and the node-per-entry layout of unordered_map was
  // the dominant cache-miss source in the allocation profile. Tasks live in
  // a SlotPool because add_task/task() hand out ActiveTask references that
  // must survive unrelated insertions; the FlatMap only maps id -> slot.
  util::FlatMap<util::ObjectId, std::vector<ObjectLocation>> objects_;
  struct Commitment {
    double rate;
    util::SimTime expires_at;
  };
  util::SlotPool<ActiveTask> task_pool_;
  util::FlatMap<util::TaskId, std::uint32_t> task_index_;
  // pending_commit_ stays an unordered_map: purge_commitments' iteration
  // order feeds the float accumulation order of the load totals, which the
  // differential battery pins byte-for-byte.
  std::unordered_map<util::PeerId, std::vector<Commitment>> pending_commit_;
  util::FlatMap<util::PeerId, util::FlatMap<std::uint64_t, double>>
      measured_exec_;  // soft state, re-learned after failover
  fairness::IncrementalFairness fairness_;
  LoadIndex load_index_;
  // participant peer -> ids of active tasks whose service graph involves
  // it; answers tasks_involving() without walking every task.
  std::unordered_map<util::PeerId, std::set<util::TaskId>> tasks_by_peer_;
  mutable graph::PathCache path_cache_;
  std::uint64_t summary_version_ = 0;
};

}  // namespace p2prm::core

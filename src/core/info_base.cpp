#include "core/info_base.hpp"

#include <algorithm>

#include "overlay/wire_fields.hpp"

namespace p2prm::core {

bool ActiveTask::all_hops_done() const {
  return std::all_of(hop_done.begin(), hop_done.end(),
                     [](bool b) { return b; });
}

std::optional<std::size_t> ActiveTask::first_pending_hop() const {
  for (std::size_t i = 0; i < hop_done.size(); ++i) {
    if (!hop_done[i]) return i;
  }
  return std::nullopt;
}

// ---- snapshot wire codec ----------------------------------------------------
// Serialization of the backup-sync payload: the domain's membership table,
// the object/service inventory and every active task's service graph. The
// decode side rebuilds Domain and ServiceGraph through their public APIs.

namespace {

// spec + joined_at + last_report + sample + eligible + score.
constexpr std::size_t kMemberRecordBytes =
    wire::kPeerSpecBytes + 8 + 8 + wire::kLoadSampleBytes + 1 + 8;

std::size_t domain_wire_size(const overlay::Domain& d) {
  return 8 + 8 + 8 + 4 + d.size() * kMemberRecordBytes;
}

void encode_domain(net::Writer& w, const overlay::Domain& d) {
  w.id(d.id());
  w.id(d.resource_manager());
  w.u64(d.epoch());
  const auto ids = d.member_ids();  // sorted: deterministic wire bytes
  w.count(ids.size());
  for (const auto peer : ids) {
    const overlay::MemberRecord& m = *d.member(peer);
    wire::encode(w, m.spec);
    w.time(m.joined_at);
    w.time(m.last_report);
    wire::encode(w, m.last_sample);
    w.boolean(m.eligible_rm);
    w.f64(m.score);
  }
}

overlay::Domain decode_domain(net::Reader& r) {
  const auto id = r.id<util::DomainIdTag>();
  const auto rm = r.id<util::PeerIdTag>();
  overlay::Domain d(id, rm);
  d.set_epoch(r.u64());
  const std::size_t n = r.count(kMemberRecordBytes);
  for (std::size_t i = 0; i < n; ++i) {
    const overlay::PeerSpec spec = wire::decode_peer_spec(r);
    const util::SimTime joined_at = r.time();
    const util::SimTime last_report = r.time();
    const profile::LoadSample sample = wire::decode_load_sample(r);
    const bool eligible = r.boolean();
    const double score = r.f64();
    if (!r.ok()) break;
    d.add_member(spec, joined_at);
    d.record_report(spec.id, sample, last_report, eligible, score);
  }
  return d;
}

// service + peer + type + ops + compute + transfer.
constexpr std::size_t kServiceHopBytes = 8 + 8 + wire::kTranscoderTypeBytes +
                                         8 + 8 + 8;

std::size_t service_graph_wire_size(const graph::ServiceGraph& sg) {
  return 8 * 4 + 2 * wire::kMediaFormatBytes + 1 + 8 * 3 + 4 +
         sg.hop_count() * kServiceHopBytes;
}

void encode_service_graph(net::Writer& w, const graph::ServiceGraph& sg) {
  w.id(sg.task());
  w.id(sg.source_peer());
  w.id(sg.object());
  w.id(sg.sink_peer());
  wire::encode(w, sg.source_format());
  wire::encode(w, sg.target_format());
  w.u8(static_cast<std::uint8_t>(sg.state));
  w.time(sg.composed_at);
  w.time(sg.started_at);
  w.time(sg.completed_at);
  w.count(sg.hop_count());
  for (const auto& h : sg.hops()) {
    w.id(h.service);
    w.id(h.peer);
    wire::encode(w, h.type);
    w.f64(h.estimated_ops);
    w.time(h.estimated_compute_time);
    w.time(h.estimated_transfer_time);
  }
}

graph::ServiceGraph decode_service_graph(net::Reader& r) {
  const auto task = r.id<util::TaskIdTag>();
  const auto source = r.id<util::PeerIdTag>();
  const auto object = r.id<util::ObjectIdTag>();
  const auto sink = r.id<util::PeerIdTag>();
  const media::MediaFormat src_fmt = wire::decode_media_format(r);
  const media::MediaFormat tgt_fmt = wire::decode_media_format(r);
  graph::ServiceGraph sg(task, source, object, sink, src_fmt, tgt_fmt);
  sg.state = static_cast<graph::TaskState>(r.u8());
  sg.composed_at = r.time();
  sg.started_at = r.time();
  sg.completed_at = r.time();
  const std::size_t n = r.count(kServiceHopBytes);
  for (std::size_t i = 0; i < n; ++i) {
    graph::ServiceHop h;
    h.service = r.id<util::ServiceIdTag>();
    h.peer = r.id<util::PeerIdTag>();
    h.type = wire::decode_transcoder_type(r);
    h.estimated_ops = r.f64();
    h.estimated_compute_time = r.time();
    h.estimated_transfer_time = r.time();
    sg.add_hop(h);
  }
  return sg;
}

std::size_t active_task_wire_size(const ActiveTask& t) {
  return service_graph_wire_size(t.sg) + qos_wire_size(t.q) + 8 + 8 + 8 + 4 +
         t.hop_done.size() + 8 + 8;
}

void encode_active_task(net::Writer& w, const ActiveTask& t) {
  encode_service_graph(w, t.sg);
  encode_qos(w, t.q);
  w.id(t.origin);
  w.time(t.submitted_at);
  w.time(t.absolute_deadline);
  w.count(t.hop_done.size());
  for (const bool b : t.hop_done) w.boolean(b);
  w.i64(t.recompositions);
  w.time(t.estimated_execution);
}

ActiveTask decode_active_task(net::Reader& r) {
  ActiveTask t;
  t.sg = decode_service_graph(r);
  t.q = decode_qos(r);
  t.origin = r.id<util::PeerIdTag>();
  t.submitted_at = r.time();
  t.absolute_deadline = r.time();
  const std::size_t n = r.count(1);
  t.hop_done.resize(n);
  for (std::size_t i = 0; i < n; ++i) t.hop_done[i] = r.boolean();
  t.recompositions = static_cast<int>(r.i64());
  t.estimated_execution = r.time();
  return t;
}

}  // namespace

std::size_t InfoBaseSnapshot::wire_size() const {
  std::size_t n = domain_wire_size(domain) + 4 + 4 + 4 + 8;
  for (const auto& [_, objs] : objects) {
    n += 8 + 4;
    for (const auto& o : objs) n += wire::wire_sizeof(o);
  }
  for (const auto& [_, svcs] : services) {
    n += 8 + 4 + svcs.size() * (8 + wire::kTranscoderTypeBytes);
  }
  for (const auto& t : tasks) n += active_task_wire_size(t);
  return n;
}

void InfoBaseSnapshot::encode(net::Writer& w) const {
  encode_domain(w, domain);
  w.count(objects.size());
  for (const auto& [peer, objs] : objects) {
    w.id(peer);
    w.count(objs.size());
    for (const auto& o : objs) wire::encode(w, o);
  }
  w.count(services.size());
  for (const auto& [peer, svcs] : services) {
    w.id(peer);
    w.count(svcs.size());
    for (const auto& s : svcs) {
      w.id(s.id);
      wire::encode(w, s.type);
    }
  }
  w.count(tasks.size());
  for (const auto& t : tasks) encode_active_task(w, t);
  w.u64(summary_version);
}

InfoBaseSnapshot InfoBaseSnapshot::decode(net::Reader& r) {
  InfoBaseSnapshot snap;
  snap.domain = decode_domain(r);
  const std::size_t no = r.count(12);
  snap.objects.reserve(no);
  for (std::size_t i = 0; i < no && r.ok(); ++i) {
    const auto peer = r.id<util::PeerIdTag>();
    const std::size_t k = r.count(37);
    std::vector<media::MediaObject> objs;
    objs.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      objs.push_back(wire::decode_media_object(r));
    }
    snap.objects.emplace_back(peer, std::move(objs));
  }
  const std::size_t ns = r.count(12);
  snap.services.reserve(ns);
  for (std::size_t i = 0; i < ns && r.ok(); ++i) {
    const auto peer = r.id<util::PeerIdTag>();
    const std::size_t k = r.count(8 + wire::kTranscoderTypeBytes);
    std::vector<ServiceOffering> svcs;
    svcs.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      ServiceOffering s;
      s.id = r.id<util::ServiceIdTag>();
      s.type = wire::decode_transcoder_type(r);
      svcs.push_back(s);
    }
    snap.services.emplace_back(peer, std::move(svcs));
  }
  const std::size_t nt = r.count(64);
  snap.tasks.reserve(nt);
  for (std::size_t i = 0; i < nt && r.ok(); ++i) {
    snap.tasks.push_back(decode_active_task(r));
  }
  snap.summary_version = r.u64();
  return snap;
}

void BackupSync::encode_body(net::Writer& w) const {
  snapshot.encode(w);
  w.count(known_rms.size());
  for (const auto& i : known_rms) wire::encode(w, i);
  w.u64(seq);
}

BackupSync BackupSync::decode_body(net::Reader& r) {
  BackupSync m;
  m.snapshot = InfoBaseSnapshot::decode(r);
  const std::size_t n = r.count(wire::kRmInfoBytes);
  m.known_rms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.known_rms.push_back(wire::decode_rm_info(r));
  }
  m.seq = r.u64();
  return m;
}

void BackupSyncAck::encode_body(net::Writer& w) const { w.u64(seq); }

BackupSyncAck BackupSyncAck::decode_body(net::Reader& r) {
  BackupSyncAck m;
  m.seq = r.u64();
  return m;
}

InfoBase::InfoBase(util::DomainId domain, util::PeerId rm)
    : domain_(domain, rm) {}

void InfoBase::add_member(const overlay::PeerSpec& spec, util::SimTime now) {
  domain_.add_member(spec, now);
  fairness_.set(spec.id, 0.0);
  load_index_.set(spec.id, 0.0, spec.capacity_ops_per_s);
}

void InfoBase::refresh_load(util::PeerId peer) {
  const auto* rec = domain_.member(peer);
  if (rec == nullptr) {
    // Stale signal for a departed member — a report or commitment racing
    // its LeaveNotice under delivery jitter. Never resurrect an index row
    // the removal path reclaimed: the load/fairness indices must track
    // exactly the domain membership (load_index.equivalence invariant).
    fairness_.remove(peer);
    load_index_.remove(peer);
    return;
  }
  const double load = effective_load(peer);
  fairness_.set(peer, load);
  load_index_.set(peer, load, rec->spec.capacity_ops_per_s);
}

void InfoBase::add_inventory(const PeerAnnounce& announce) {
  // Idempotent: a peer may re-announce after an RM failover or a rejoin.
  const util::PeerId peer = announce.spec.id;
  for (const auto& obj : announce.objects) {
    auto& locs = objects_[obj.id];
    const bool present =
        std::any_of(locs.begin(), locs.end(), [&](const ObjectLocation& l) {
          return l.peer == peer && l.object.format == obj.format;
        });
    if (!present) locs.push_back(ObjectLocation{peer, obj});
  }
  for (const auto& svc : announce.services) {
    if (!gr_.has_service(svc.id)) gr_.add_service(svc.id, peer, svc.type);
  }
  bump_summary_version();
}

std::vector<util::TaskId> InfoBase::remove_peer(util::PeerId peer) {
  domain_.remove_member(peer);
  fairness_.remove(peer);
  load_index_.remove(peer);
  pending_commit_.erase(peer);
  measured_exec_.erase(peer);
  gr_.remove_peer(peer);
  // FlatMap forbids erase-during-iteration: strip locations in place, then
  // drop the emptied object ids in a second pass.
  std::vector<util::ObjectId> emptied;
  objects_.for_each([&](const util::ObjectId& id,
                        std::vector<ObjectLocation>& locs) {
    locs.erase(std::remove_if(locs.begin(), locs.end(),
                              [&](const ObjectLocation& l) {
                                return l.peer == peer;
                              }),
               locs.end());
    if (locs.empty()) emptied.push_back(id);
  });
  for (const auto id : emptied) objects_.erase(id);
  bump_summary_version();
  return tasks_involving(peer);
}

void InfoBase::record_report(util::PeerId peer, const ProfilerReport& report,
                             util::SimTime now) {
  // A report can outlive its sender's membership (demotion's LeaveNotice
  // and a final report race under jitter); Domain::record_report ignores
  // it, and nothing below may re-create per-peer state either.
  if (domain_.member(peer) == nullptr) return;
  domain_.record_report(peer, report.sample, now, report.eligible_rm,
                        report.rm_score);
  purge_commitments(now);
  refresh_load(peer);
  if (!report.measured_exec_s.empty()) {
    auto& per_type = measured_exec_[peer];
    for (const auto& [key, mean_s] : report.measured_exec_s) {
      per_type[key] = mean_s;
    }
  }
}

double InfoBase::measured_execution_s(util::PeerId peer,
                                      std::uint64_t type_key) const {
  const auto* per_type = measured_exec_.find(peer);
  if (per_type == nullptr) return -1.0;
  const double* mean = per_type->find(type_key);
  return mean == nullptr ? -1.0 : *mean;
}

double InfoBase::effective_load(util::PeerId peer) const {
  const auto* rec = domain_.member(peer);
  const double reported = rec ? rec->last_sample.smoothed_load_ops : 0.0;
  const auto it = pending_commit_.find(peer);
  double committed = 0.0;
  if (it != pending_commit_.end()) {
    for (const auto& c : it->second) committed += c.rate;
  }
  return reported + committed;
}

void InfoBase::commit_load(util::PeerId peer, double ops_rate,
                           util::SimTime now, util::SimDuration ttl) {
  pending_commit_[peer].push_back(Commitment{ops_rate, now + ttl});
  refresh_load(peer);
}

void InfoBase::release_load(util::PeerId peer, double ops_rate) {
  const auto it = pending_commit_.find(peer);
  if (it == pending_commit_.end()) return;
  // Release the earliest commitments up to the requested amount.
  double remaining = ops_rate;
  auto& commits = it->second;
  for (auto c = commits.begin(); c != commits.end() && remaining > 0.0;) {
    const double take = std::min(remaining, c->rate);
    c->rate -= take;
    remaining -= take;
    if (c->rate <= 1e-9) {
      c = commits.erase(c);
    } else {
      ++c;
    }
  }
  if (commits.empty()) pending_commit_.erase(it);
  refresh_load(peer);
}

void InfoBase::purge_commitments(util::SimTime now) {
  for (auto it = pending_commit_.begin(); it != pending_commit_.end();) {
    auto& commits = it->second;
    const std::size_t before = commits.size();
    commits.erase(std::remove_if(commits.begin(), commits.end(),
                                 [&](const Commitment& c) {
                                   return c.expires_at <= now;
                                 }),
                  commits.end());
    const util::PeerId peer = it->first;
    const bool changed = commits.size() != before;
    if (commits.empty()) {
      it = pending_commit_.erase(it);
    } else {
      ++it;
    }
    if (changed) refresh_load(peer);
  }
}

const std::vector<ObjectLocation>* InfoBase::locations(
    util::ObjectId object) const {
  return objects_.find(object);
}

std::vector<util::ObjectId> InfoBase::all_objects() const {
  std::vector<util::ObjectId> out;
  out.reserve(objects_.size());
  objects_.for_each([&](const util::ObjectId& id, const auto&) {
    out.push_back(id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

void InfoBase::index_task(const ActiveTask& t) {
  for (const auto peer : t.sg.participants()) {
    tasks_by_peer_[peer].insert(t.sg.task());
  }
}

void InfoBase::unindex_task(const ActiveTask& t) {
  const util::TaskId id = t.sg.task();
  for (const auto peer : t.sg.participants()) {
    const auto it = tasks_by_peer_.find(peer);
    if (it == tasks_by_peer_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) tasks_by_peer_.erase(it);
  }
}

ActiveTask& InfoBase::add_task(ActiveTask task) {
  const util::TaskId id = task.sg.task();
  if (const std::uint32_t* found = task_index_.find(id)) {
    // Re-announce of a known task: replace in the same slot so references
    // handed out earlier keep pointing at the live record.
    ActiveTask& stored = task_pool_.get(*found);
    unindex_task(stored);
    stored = std::move(task);
    index_task(stored);
    return stored;
  }
  const std::uint32_t slot = task_pool_.emplace(std::move(task));
  task_index_.try_emplace(id, slot);
  ActiveTask& stored = task_pool_.get(slot);
  index_task(stored);
  return stored;
}

ActiveTask* InfoBase::task(util::TaskId id) {
  const std::uint32_t* slot = task_index_.find(id);
  return slot == nullptr ? nullptr : &task_pool_.get(*slot);
}

const ActiveTask* InfoBase::task(util::TaskId id) const {
  const std::uint32_t* slot = task_index_.find(id);
  return slot == nullptr ? nullptr : &task_pool_.get(*slot);
}

void InfoBase::remove_task(util::TaskId id) {
  const std::uint32_t* found = task_index_.find(id);
  if (found == nullptr) return;
  const std::uint32_t slot = *found;
  unindex_task(task_pool_.get(slot));
  task_pool_.erase(slot);
  task_index_.erase(id);
}

void InfoBase::reindex_task(util::TaskId id) {
  const std::uint32_t* slot = task_index_.find(id);
  if (slot == nullptr) return;
  // The stored sg may already have been replaced, so the index entries for
  // the *old* participants cannot be derived from it; rebuild by scan. A
  // task's graph is only swapped on recovery, so this stays off the
  // per-query hot path.
  for (auto jt = tasks_by_peer_.begin(); jt != tasks_by_peer_.end();) {
    jt->second.erase(id);
    if (jt->second.empty()) {
      jt = tasks_by_peer_.erase(jt);
    } else {
      ++jt;
    }
  }
  index_task(task_pool_.get(*slot));
}

std::vector<util::TaskId> InfoBase::tasks_involving(util::PeerId peer) const {
  const auto it = tasks_by_peer_.find(peer);
  if (it == tasks_by_peer_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<util::TaskId> InfoBase::running_task_ids() const {
  std::vector<util::TaskId> out;
  task_index_.for_each([&](const util::TaskId& id, const std::uint32_t& slot) {
    const ActiveTask& t = task_pool_.get(slot);
    if (t.sg.state == graph::TaskState::Running ||
        t.sg.state == graph::TaskState::Composing) {
      out.push_back(id);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

gossip::DomainSummary InfoBase::build_summary(std::size_t bloom_bits,
                                              std::size_t bloom_hashes) const {
  gossip::DomainSummary s;
  s.domain = domain_.id();
  s.resource_manager = domain_.resource_manager();
  s.version = summary_version_;
  s.peer_count = domain_.size();
  s.total_capacity_ops = domain_.total_capacity_ops();
  s.total_load_ops = domain_.total_load_ops();
  const bloom::BloomParameters params{bloom_bits, bloom_hashes};
  s.objects = bloom::BloomFilter(params);
  s.services = bloom::BloomFilter(params);
  objects_.for_each([&](const util::ObjectId& id, const auto&) {
    s.objects.insert(id);
  });
  for (const auto* e : gr_.all_services()) {
    s.services.insert(e->type.type_key());
  }
  return s;
}

gossip::DomainAggregate InfoBase::build_aggregate() const {
  gossip::DomainAggregate agg;
  load_index_.for_each(
      [&](util::PeerId, double load, double cap, double util) {
        agg.add_peer(cap, load, util);
      });
  // Pin the scalars admission compares against to the LoadIndex's own
  // incrementally accumulated values: the fold above re-adds floats in
  // slot order, which may differ in the last bit from the index's
  // subtract-then-add history. Bit-identical inputs -> bit-identical
  // admission decisions, which the hierarchical differential relies on.
  agg.peer_count = static_cast<std::uint32_t>(load_index_.size());
  agg.total_load_ops = load_index_.total_load();
  agg.total_capacity_ops = load_index_.total_capacity();
  agg.min_utilization = load_index_.min_utilization();
  return agg;
}

InfoBaseSnapshot InfoBase::snapshot() const {
  InfoBaseSnapshot snap;
  snap.domain = domain_;
  snap.summary_version = summary_version_;
  // Objects grouped by hosting peer.
  std::unordered_map<util::PeerId, std::vector<media::MediaObject>> by_peer;
  objects_.for_each([&](const auto&, const std::vector<ObjectLocation>& locs) {
    for (const auto& loc : locs) by_peer[loc.peer].push_back(loc.object);
  });
  for (auto& [peer, objs] : by_peer) {
    std::sort(objs.begin(), objs.end(),
              [](const media::MediaObject& a, const media::MediaObject& b) {
                return a.id < b.id;
              });
    snap.objects.emplace_back(peer, std::move(objs));
  }
  std::sort(snap.objects.begin(), snap.objects.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Services grouped by hosting peer.
  std::unordered_map<util::PeerId, std::vector<ServiceOffering>> svc_by_peer;
  for (const auto* e : gr_.all_services()) {
    svc_by_peer[e->peer].push_back(ServiceOffering{e->id, e->type});
  }
  for (auto& [peer, svcs] : svc_by_peer) {
    snap.services.emplace_back(peer, std::move(svcs));
  }
  std::sort(snap.services.begin(), snap.services.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  task_index_.for_each([&](const auto&, const std::uint32_t& slot) {
    snap.tasks.push_back(task_pool_.get(slot));
  });
  std::sort(snap.tasks.begin(), snap.tasks.end(),
            [](const ActiveTask& a, const ActiveTask& b) {
              return a.sg.task() < b.sg.task();
            });
  return snap;
}

void InfoBase::restore(const InfoBaseSnapshot& snap) {
  domain_ = snap.domain;
  summary_version_ = snap.summary_version;
  objects_.clear();
  task_pool_.clear();
  task_index_.clear();
  tasks_by_peer_.clear();
  pending_commit_.clear();
  gr_ = graph::ResourceGraph();
  path_cache_.clear();
  for (const auto& [peer, objs] : snap.objects) {
    for (const auto& obj : objs) {
      objects_[obj.id].push_back(ObjectLocation{peer, obj});
    }
  }
  for (const auto& [peer, svcs] : snap.services) {
    for (const auto& svc : svcs) gr_.add_service(svc.id, peer, svc.type);
  }
  for (const auto& t : snap.tasks) {
    const std::uint32_t slot = task_pool_.emplace(t);
    task_index_.try_emplace(t.sg.task(), slot);
    index_task(task_pool_.get(slot));
  }
  rebuild_fairness();
}

void InfoBase::rebuild_fairness() {
  fairness_ = fairness::IncrementalFairness();
  load_index_.clear();
  for (const auto id : domain_.member_ids()) {
    const auto* rec = domain_.member(id);
    fairness_.set(id, rec ? rec->last_sample.smoothed_load_ops : 0.0);
    load_index_.set(id, rec ? rec->last_sample.smoothed_load_ops : 0.0,
                    rec ? rec->spec.capacity_ops_per_s : 0.0);
  }
}

}  // namespace p2prm::core

#include "core/info_base.hpp"

#include <algorithm>

namespace p2prm::core {

bool ActiveTask::all_hops_done() const {
  return std::all_of(hop_done.begin(), hop_done.end(),
                     [](bool b) { return b; });
}

std::optional<std::size_t> ActiveTask::first_pending_hop() const {
  for (std::size_t i = 0; i < hop_done.size(); ++i) {
    if (!hop_done[i]) return i;
  }
  return std::nullopt;
}

std::size_t InfoBaseSnapshot::wire_size() const {
  std::size_t n = 64;
  n += domain.size() * 96;
  for (const auto& [_, objs] : objects) n += 16 + objs.size() * 64;
  for (const auto& [_, svcs] : services) n += 16 + svcs.size() * 32;
  for (const auto& t : tasks) n += 64 + t.sg.hop_count() * 48;
  return n;
}

InfoBase::InfoBase(util::DomainId domain, util::PeerId rm)
    : domain_(domain, rm) {}

void InfoBase::add_member(const overlay::PeerSpec& spec, util::SimTime now) {
  domain_.add_member(spec, now);
  fairness_.set(spec.id, 0.0);
  load_index_.set(spec.id, 0.0, spec.capacity_ops_per_s);
}

void InfoBase::refresh_load(util::PeerId peer) {
  const auto* rec = domain_.member(peer);
  if (rec == nullptr) {
    // Stale signal for a departed member — a report or commitment racing
    // its LeaveNotice under delivery jitter. Never resurrect an index row
    // the removal path reclaimed: the load/fairness indices must track
    // exactly the domain membership (load_index.equivalence invariant).
    fairness_.remove(peer);
    load_index_.remove(peer);
    return;
  }
  const double load = effective_load(peer);
  fairness_.set(peer, load);
  load_index_.set(peer, load, rec->spec.capacity_ops_per_s);
}

void InfoBase::add_inventory(const PeerAnnounce& announce) {
  // Idempotent: a peer may re-announce after an RM failover or a rejoin.
  const util::PeerId peer = announce.spec.id;
  for (const auto& obj : announce.objects) {
    auto& locs = objects_[obj.id];
    const bool present =
        std::any_of(locs.begin(), locs.end(), [&](const ObjectLocation& l) {
          return l.peer == peer && l.object.format == obj.format;
        });
    if (!present) locs.push_back(ObjectLocation{peer, obj});
  }
  for (const auto& svc : announce.services) {
    if (!gr_.has_service(svc.id)) gr_.add_service(svc.id, peer, svc.type);
  }
  bump_summary_version();
}

std::vector<util::TaskId> InfoBase::remove_peer(util::PeerId peer) {
  domain_.remove_member(peer);
  fairness_.remove(peer);
  load_index_.remove(peer);
  pending_commit_.erase(peer);
  measured_exec_.erase(peer);
  gr_.remove_peer(peer);
  // FlatMap forbids erase-during-iteration: strip locations in place, then
  // drop the emptied object ids in a second pass.
  std::vector<util::ObjectId> emptied;
  objects_.for_each([&](const util::ObjectId& id,
                        std::vector<ObjectLocation>& locs) {
    locs.erase(std::remove_if(locs.begin(), locs.end(),
                              [&](const ObjectLocation& l) {
                                return l.peer == peer;
                              }),
               locs.end());
    if (locs.empty()) emptied.push_back(id);
  });
  for (const auto id : emptied) objects_.erase(id);
  bump_summary_version();
  return tasks_involving(peer);
}

void InfoBase::record_report(util::PeerId peer, const ProfilerReport& report,
                             util::SimTime now) {
  // A report can outlive its sender's membership (demotion's LeaveNotice
  // and a final report race under jitter); Domain::record_report ignores
  // it, and nothing below may re-create per-peer state either.
  if (domain_.member(peer) == nullptr) return;
  domain_.record_report(peer, report.sample, now, report.eligible_rm,
                        report.rm_score);
  purge_commitments(now);
  refresh_load(peer);
  if (!report.measured_exec_s.empty()) {
    auto& per_type = measured_exec_[peer];
    for (const auto& [key, mean_s] : report.measured_exec_s) {
      per_type[key] = mean_s;
    }
  }
}

double InfoBase::measured_execution_s(util::PeerId peer,
                                      std::uint64_t type_key) const {
  const auto* per_type = measured_exec_.find(peer);
  if (per_type == nullptr) return -1.0;
  const double* mean = per_type->find(type_key);
  return mean == nullptr ? -1.0 : *mean;
}

double InfoBase::effective_load(util::PeerId peer) const {
  const auto* rec = domain_.member(peer);
  const double reported = rec ? rec->last_sample.smoothed_load_ops : 0.0;
  const auto it = pending_commit_.find(peer);
  double committed = 0.0;
  if (it != pending_commit_.end()) {
    for (const auto& c : it->second) committed += c.rate;
  }
  return reported + committed;
}

void InfoBase::commit_load(util::PeerId peer, double ops_rate,
                           util::SimTime now, util::SimDuration ttl) {
  pending_commit_[peer].push_back(Commitment{ops_rate, now + ttl});
  refresh_load(peer);
}

void InfoBase::release_load(util::PeerId peer, double ops_rate) {
  const auto it = pending_commit_.find(peer);
  if (it == pending_commit_.end()) return;
  // Release the earliest commitments up to the requested amount.
  double remaining = ops_rate;
  auto& commits = it->second;
  for (auto c = commits.begin(); c != commits.end() && remaining > 0.0;) {
    const double take = std::min(remaining, c->rate);
    c->rate -= take;
    remaining -= take;
    if (c->rate <= 1e-9) {
      c = commits.erase(c);
    } else {
      ++c;
    }
  }
  if (commits.empty()) pending_commit_.erase(it);
  refresh_load(peer);
}

void InfoBase::purge_commitments(util::SimTime now) {
  for (auto it = pending_commit_.begin(); it != pending_commit_.end();) {
    auto& commits = it->second;
    const std::size_t before = commits.size();
    commits.erase(std::remove_if(commits.begin(), commits.end(),
                                 [&](const Commitment& c) {
                                   return c.expires_at <= now;
                                 }),
                  commits.end());
    const util::PeerId peer = it->first;
    const bool changed = commits.size() != before;
    if (commits.empty()) {
      it = pending_commit_.erase(it);
    } else {
      ++it;
    }
    if (changed) refresh_load(peer);
  }
}

const std::vector<ObjectLocation>* InfoBase::locations(
    util::ObjectId object) const {
  return objects_.find(object);
}

std::vector<util::ObjectId> InfoBase::all_objects() const {
  std::vector<util::ObjectId> out;
  out.reserve(objects_.size());
  objects_.for_each([&](const util::ObjectId& id, const auto&) {
    out.push_back(id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

void InfoBase::index_task(const ActiveTask& t) {
  for (const auto peer : t.sg.participants()) {
    tasks_by_peer_[peer].insert(t.sg.task());
  }
}

void InfoBase::unindex_task(const ActiveTask& t) {
  const util::TaskId id = t.sg.task();
  for (const auto peer : t.sg.participants()) {
    const auto it = tasks_by_peer_.find(peer);
    if (it == tasks_by_peer_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) tasks_by_peer_.erase(it);
  }
}

ActiveTask& InfoBase::add_task(ActiveTask task) {
  const util::TaskId id = task.sg.task();
  if (const std::uint32_t* found = task_index_.find(id)) {
    // Re-announce of a known task: replace in the same slot so references
    // handed out earlier keep pointing at the live record.
    ActiveTask& stored = task_pool_.get(*found);
    unindex_task(stored);
    stored = std::move(task);
    index_task(stored);
    return stored;
  }
  const std::uint32_t slot = task_pool_.emplace(std::move(task));
  task_index_.try_emplace(id, slot);
  ActiveTask& stored = task_pool_.get(slot);
  index_task(stored);
  return stored;
}

ActiveTask* InfoBase::task(util::TaskId id) {
  const std::uint32_t* slot = task_index_.find(id);
  return slot == nullptr ? nullptr : &task_pool_.get(*slot);
}

const ActiveTask* InfoBase::task(util::TaskId id) const {
  const std::uint32_t* slot = task_index_.find(id);
  return slot == nullptr ? nullptr : &task_pool_.get(*slot);
}

void InfoBase::remove_task(util::TaskId id) {
  const std::uint32_t* found = task_index_.find(id);
  if (found == nullptr) return;
  const std::uint32_t slot = *found;
  unindex_task(task_pool_.get(slot));
  task_pool_.erase(slot);
  task_index_.erase(id);
}

void InfoBase::reindex_task(util::TaskId id) {
  const std::uint32_t* slot = task_index_.find(id);
  if (slot == nullptr) return;
  // The stored sg may already have been replaced, so the index entries for
  // the *old* participants cannot be derived from it; rebuild by scan. A
  // task's graph is only swapped on recovery, so this stays off the
  // per-query hot path.
  for (auto jt = tasks_by_peer_.begin(); jt != tasks_by_peer_.end();) {
    jt->second.erase(id);
    if (jt->second.empty()) {
      jt = tasks_by_peer_.erase(jt);
    } else {
      ++jt;
    }
  }
  index_task(task_pool_.get(*slot));
}

std::vector<util::TaskId> InfoBase::tasks_involving(util::PeerId peer) const {
  const auto it = tasks_by_peer_.find(peer);
  if (it == tasks_by_peer_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<util::TaskId> InfoBase::running_task_ids() const {
  std::vector<util::TaskId> out;
  task_index_.for_each([&](const util::TaskId& id, const std::uint32_t& slot) {
    const ActiveTask& t = task_pool_.get(slot);
    if (t.sg.state == graph::TaskState::Running ||
        t.sg.state == graph::TaskState::Composing) {
      out.push_back(id);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

gossip::DomainSummary InfoBase::build_summary(std::size_t bloom_bits,
                                              std::size_t bloom_hashes) const {
  gossip::DomainSummary s;
  s.domain = domain_.id();
  s.resource_manager = domain_.resource_manager();
  s.version = summary_version_;
  s.peer_count = domain_.size();
  s.total_capacity_ops = domain_.total_capacity_ops();
  s.total_load_ops = domain_.total_load_ops();
  const bloom::BloomParameters params{bloom_bits, bloom_hashes};
  s.objects = bloom::BloomFilter(params);
  s.services = bloom::BloomFilter(params);
  objects_.for_each([&](const util::ObjectId& id, const auto&) {
    s.objects.insert(id);
  });
  for (const auto* e : gr_.all_services()) {
    s.services.insert(e->type.type_key());
  }
  return s;
}

gossip::DomainAggregate InfoBase::build_aggregate() const {
  gossip::DomainAggregate agg;
  load_index_.for_each(
      [&](util::PeerId, double load, double cap, double util) {
        agg.add_peer(cap, load, util);
      });
  // Pin the scalars admission compares against to the LoadIndex's own
  // incrementally accumulated values: the fold above re-adds floats in
  // slot order, which may differ in the last bit from the index's
  // subtract-then-add history. Bit-identical inputs -> bit-identical
  // admission decisions, which the hierarchical differential relies on.
  agg.peer_count = static_cast<std::uint32_t>(load_index_.size());
  agg.total_load_ops = load_index_.total_load();
  agg.total_capacity_ops = load_index_.total_capacity();
  agg.min_utilization = load_index_.min_utilization();
  return agg;
}

InfoBaseSnapshot InfoBase::snapshot() const {
  InfoBaseSnapshot snap;
  snap.domain = domain_;
  snap.summary_version = summary_version_;
  // Objects grouped by hosting peer.
  std::unordered_map<util::PeerId, std::vector<media::MediaObject>> by_peer;
  objects_.for_each([&](const auto&, const std::vector<ObjectLocation>& locs) {
    for (const auto& loc : locs) by_peer[loc.peer].push_back(loc.object);
  });
  for (auto& [peer, objs] : by_peer) {
    std::sort(objs.begin(), objs.end(),
              [](const media::MediaObject& a, const media::MediaObject& b) {
                return a.id < b.id;
              });
    snap.objects.emplace_back(peer, std::move(objs));
  }
  std::sort(snap.objects.begin(), snap.objects.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Services grouped by hosting peer.
  std::unordered_map<util::PeerId, std::vector<ServiceOffering>> svc_by_peer;
  for (const auto* e : gr_.all_services()) {
    svc_by_peer[e->peer].push_back(ServiceOffering{e->id, e->type});
  }
  for (auto& [peer, svcs] : svc_by_peer) {
    snap.services.emplace_back(peer, std::move(svcs));
  }
  std::sort(snap.services.begin(), snap.services.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  task_index_.for_each([&](const auto&, const std::uint32_t& slot) {
    snap.tasks.push_back(task_pool_.get(slot));
  });
  std::sort(snap.tasks.begin(), snap.tasks.end(),
            [](const ActiveTask& a, const ActiveTask& b) {
              return a.sg.task() < b.sg.task();
            });
  return snap;
}

void InfoBase::restore(const InfoBaseSnapshot& snap) {
  domain_ = snap.domain;
  summary_version_ = snap.summary_version;
  objects_.clear();
  task_pool_.clear();
  task_index_.clear();
  tasks_by_peer_.clear();
  pending_commit_.clear();
  gr_ = graph::ResourceGraph();
  path_cache_.clear();
  for (const auto& [peer, objs] : snap.objects) {
    for (const auto& obj : objs) {
      objects_[obj.id].push_back(ObjectLocation{peer, obj});
    }
  }
  for (const auto& [peer, svcs] : snap.services) {
    for (const auto& svc : svcs) gr_.add_service(svc.id, peer, svc.type);
  }
  for (const auto& t : snap.tasks) {
    const std::uint32_t slot = task_pool_.emplace(t);
    task_index_.try_emplace(t.sg.task(), slot);
    index_task(task_pool_.get(slot));
  }
  rebuild_fairness();
}

void InfoBase::rebuild_fairness() {
  fairness_ = fairness::IncrementalFairness();
  load_index_.clear();
  for (const auto id : domain_.member_ids()) {
    const auto* rec = domain_.member(id);
    fairness_.set(id, rec ? rec->last_sample.smoothed_load_ops : 0.0);
    load_index_.set(id, rec ? rec->last_sample.smoothed_load_ops : 0.0,
                    rec ? rec->spec.capacity_ops_per_s : 0.0);
  }
}

}  // namespace p2prm::core

// Task-protocol and resource-feedback messages (§4.3, §4.4).
//
// Overlay membership messages live in overlay/membership.hpp; everything a
// task's lifecycle or the RM's information base needs is here.
#pragma once

#include <string>
#include <vector>

#include "graph/service_graph.hpp"
#include "media/catalog.hpp"
#include "net/message.hpp"
#include "overlay/peer.hpp"
#include "profile/profiler.hpp"
#include "util/ids.hpp"

namespace p2prm::core {

// ---- inventory -----------------------------------------------------------

struct ServiceOffering {
  util::ServiceId id;  // instance id, unique system-wide
  media::TranscoderType type;
};

// Sent by a peer right after JoinAccept: "here is what I store and what I
// can do" (§3.2 items 1-2). Also re-sent to a takeover RM.
struct PeerAnnounce final : net::Message {
  overlay::PeerSpec spec;
  std::vector<media::MediaObject> objects;
  std::vector<ServiceOffering> services;

  static constexpr net::WireType kType = net::WireType::PeerAnnounce;
  std::size_t wire_size() const override;
  std::string_view type_name() const override { return "core.peer_announce"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static PeerAnnounce decode_body(net::Reader& r);
};

// ---- task submission --------------------------------------------------------

// What the user asks for (§4.3): an object "by name, also specifying a set
// of acceptable bitrates, resolutions and codecs", a deadline and an
// importance.
struct QoSRequirements {
  util::ObjectId object;
  std::vector<media::MediaFormat> acceptable_formats;
  util::SimDuration deadline = util::seconds(10);  // relative to submission
  double importance = 1.0;
};

// Shared QoS codec (TaskQuery embeds it; so does the backup-sync snapshot).
[[nodiscard]] std::size_t qos_wire_size(const QoSRequirements& q);
void encode_qos(net::Writer& w, const QoSRequirements& q);
[[nodiscard]] QoSRequirements decode_qos(net::Reader& r);

struct TaskQuery final : net::Message {
  util::TaskId task;
  util::PeerId origin;  // the requesting peer == the media sink
  QoSRequirements q;
  util::SimTime submitted_at = 0;
  int redirect_count = 0;

  static constexpr net::WireType kType = net::WireType::TaskQuery;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 60 + q.acceptable_formats.size() * 9;
  }
  std::string_view type_name() const override { return "core.task_query"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskQuery decode_body(net::Reader& r);
};

struct TaskReject final : net::Message {
  util::TaskId task;
  std::string reason;
  static constexpr net::WireType kType = net::WireType::TaskReject;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 12 + reason.size();
  }
  std::string_view type_name() const override { return "core.task_reject"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskReject decode_body(net::Reader& r);
};

struct TaskAccept final : net::Message {
  util::TaskId task;
  util::PeerId serving_rm;
  util::SimDuration estimated_execution = 0;
  static constexpr net::WireType kType = net::WireType::TaskAccept;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 24; }
  std::string_view type_name() const override { return "core.task_accept"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskAccept decode_body(net::Reader& r);
};

// ---- service-graph composition (§4.3) -------------------------------------------
// "Graph composition messages are sent to the nodes that will participate
// in the streaming graph, allowing them to establish the appropriate
// connections."

struct HopSpec {
  util::TaskId task;
  std::size_t hop_index = 0;  // 0-based position in the chain
  util::ServiceId service;
  media::TranscoderType type;
  util::PeerId rm;          // where to send HopDone feedback
  util::PeerId prev_peer;   // data comes from here
  util::PeerId next_peer;   // send output here (the sink for the last hop)
  bool next_is_sink = false;
  util::ObjectId object;
  double media_seconds = 0.0;
  util::SimTime absolute_deadline = 0;
  double importance = 1.0;
};

struct GraphCompose final : net::Message {
  HopSpec hop;
  static constexpr net::WireType kType = net::WireType::GraphCompose;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 99; }
  std::string_view type_name() const override { return "core.graph_compose"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static GraphCompose decode_body(net::Reader& r);
};

// RM -> source peer: begin pushing the object into the chain.
struct SourceStart final : net::Message {
  util::TaskId task;
  util::ObjectId object;
  util::PeerId first_hop;  // first transcoder peer, or the sink directly
  bool first_is_sink = false;
  double media_seconds = 0.0;
  media::MediaFormat format{};
  util::SimTime absolute_deadline = 0;
  util::PeerId rm;
  static constexpr net::WireType kType = net::WireType::SourceStart;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 58; }
  std::string_view type_name() const override { return "core.source_start"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static SourceStart decode_body(net::Reader& r);
};

// The media payload moving between pipeline stages. wire_size is the real
// stream size, so transmission time models the data plane.
struct StreamData final : net::Message {
  util::TaskId task;
  std::size_t dest_hop_index = 0;  // meaningless when for_sink
  bool for_sink = false;
  util::ObjectId object;
  media::MediaFormat format{};
  double media_seconds = 0.0;
  util::SimTime pipeline_started_at = 0;
  util::SimTime sent_at = 0;

  [[nodiscard]] std::size_t payload_bytes() const {
    return static_cast<std::size_t>(static_cast<double>(format.bitrate_kbps) *
                                    1000.0 / 8.0 * media_seconds);
  }
  static constexpr net::WireType kType = net::WireType::StreamData;
  // Metadata plus the modelled media payload (zero bytes on a real wire),
  // so a loopback frame genuinely occupies the stream size the simulator
  // charges for it.
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 58 + payload_bytes();
  }
  std::string_view type_name() const override { return "core.stream_data"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static StreamData decode_body(net::Reader& r);
};

// ---- execution feedback (§4.4 intra-domain propagation) ---------------------------

// Hop peer -> RM when its transcode job finished.
struct HopDone final : net::Message {
  util::TaskId task;
  std::size_t hop_index = 0;
  util::SimDuration execution_time = 0;  // measured by the local profiler
  bool missed_local_deadline = false;
  static constexpr net::WireType kType = net::WireType::HopDone;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 25; }
  std::string_view type_name() const override { return "core.hop_done"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static HopDone decode_body(net::Reader& r);
};

// Sink (the requesting peer) -> RM on delivery.
struct TaskCompleted final : net::Message {
  util::TaskId task;
  util::SimTime completed_at = 0;
  bool missed_deadline = false;
  static constexpr net::WireType kType = net::WireType::TaskCompleted;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 17; }
  std::string_view type_name() const override { return "core.task_completed"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskCompleted decode_body(net::Reader& r);
};

// RM -> origin peer: the task is unrecoverable.
struct TaskFailedMsg final : net::Message {
  util::TaskId task;
  std::string reason;
  static constexpr net::WireType kType = net::WireType::TaskFailed;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 12 + reason.size();
  }
  std::string_view type_name() const override { return "core.task_failed"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskFailedMsg decode_body(net::Reader& r);
};

// Hop peer -> RM: this hop cannot complete (e.g. its job was dropped as
// hopeless); the RM decides whether to re-plan or fail the task.
struct HopFailed final : net::Message {
  util::TaskId task;
  std::size_t hop_index = 0;
  std::string reason;
  static constexpr net::WireType kType = net::WireType::HopFailed;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 20 + reason.size();
  }
  std::string_view type_name() const override { return "core.hop_failed"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static HopFailed decode_body(net::Reader& r);
};

// Peer -> RM, periodic (§4.4 intra-domain propagation). Carries the load
// sample plus the profiler's measured mean execution time per service type
// ("monitoring the computation and communication times of the applications
// as they execute", §2) so the RM's estimates improve over time.
struct ProfilerReport final : net::Message {
  profile::LoadSample sample{};
  bool eligible_rm = false;
  double rm_score = 0.0;
  std::size_t active_hops = 0;
  // (TranscoderType::type_key, mean measured execution seconds).
  std::vector<std::pair<std::uint64_t, double>> measured_exec_s;
  // Monotonic per-peer sequence number; lets the RM ack and the peer retry
  // a lost report without the RM ever applying stale state (it keeps the
  // highest seq seen per member).
  std::uint64_t seq = 0;
  static constexpr net::WireType kType = net::WireType::ProfilerReport;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 101 + measured_exec_s.size() * 16;
  }
  std::string_view type_name() const override { return "core.profiler_report"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static ProfilerReport decode_body(net::Reader& r);
};

// RM -> peer: acknowledges ProfilerReport `seq` (when
// SystemConfig::ack_profiler_reports is on). Absence of the ack within the
// retry policy's timeout triggers a resend of the same sample.
struct ReportAck final : net::Message {
  std::uint64_t seq = 0;
  static constexpr net::WireType kType = net::WireType::ReportAck;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 8; }
  std::string_view type_name() const override { return "core.report_ack"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static ReportAck decode_body(net::Reader& r);
};

// ---- adaptation (§4.5) -----------------------------------------------------------

// RM -> hop peer: abandon this hop (task reassigned or failed).
struct HopCancel final : net::Message {
  util::TaskId task;
  std::size_t hop_index = 0;
  static constexpr net::WireType kType = net::WireType::HopCancel;
  std::size_t wire_size() const override { return net::kFrameHeaderBytes + 16; }
  std::string_view type_name() const override { return "core.hop_cancel"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static HopCancel decode_body(net::Reader& r);
};

// Origin peer -> RM: dynamic QoS renegotiation ("Users may change QoS
// requirements dynamically. Specifically, they may reduce the requested
// bit-rate or relax their deadlines to cope with congested networks, or
// increase the QoS parameters if they assume resources are abundant.")
struct TaskQosUpdate final : net::Message {
  util::TaskId task;
  // New deadline, still relative to the original submission time.
  util::SimDuration new_deadline = 0;
  // Optionally replace the acceptable target formats (empty = keep).
  std::vector<media::MediaFormat> new_acceptable_formats;
  static constexpr net::WireType kType = net::WireType::TaskQosUpdate;
  std::size_t wire_size() const override {
    return net::kFrameHeaderBytes + 20 + new_acceptable_formats.size() * 9;
  }
  std::string_view type_name() const override { return "core.task_qos_update"; }
  net::WireType wire_type() const override { return kType; }
  void encode_body(net::Writer& w) const override;
  static TaskQosUpdate decode_body(net::Reader& r);
};

}  // namespace p2prm::core

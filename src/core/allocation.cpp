#include "core/allocation.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace p2prm::core {

util::SimDuration estimate_compute_time(const InfoBase& info,
                                        const SystemConfig& config,
                                        util::PeerId peer, double ops) {
  const auto* rec = info.domain().member(peer);
  if (rec == nullptr) return util::kTimeInfinity;
  const double capacity = rec->spec.capacity_ops_per_s;
  const double spare = std::max(capacity - info.effective_load(peer),
                                capacity * config.min_spare_capacity_fraction);
  const double backlog_s = rec->last_sample.backlog_seconds;
  return util::from_seconds(backlog_s + ops / spare);
}

util::SimDuration estimate_service_time(const InfoBase& info,
                                        const SystemConfig& config,
                                        util::PeerId peer, double ops,
                                        std::uint64_t type_key) {
  const util::SimDuration model = estimate_compute_time(info, config, peer, ops);
  if (!config.use_measured_execution_times) return model;
  const double measured_s = info.measured_execution_s(peer, type_key);
  if (measured_s < 0.0) return model;
  return std::max(model, util::from_seconds(measured_s));
}

namespace {

[[nodiscard]] std::size_t stream_bytes(const media::MediaFormat& format,
                                       double media_seconds) {
  return static_cast<std::size_t>(static_cast<double>(format.bitrate_kbps) *
                                  1000.0 / 8.0 * media_seconds);
}

// Cost of the partial pipeline: transfer into hop 1, then per-hop compute
// and inter-hop transfers. Excludes the final hop->sink transfer (added by
// evaluate_path); monotone in path length, so usable as a BFS pruner.
[[nodiscard]] util::SimDuration partial_cost(const InfoBase& info,
                                             const net::Transport& network,
                                             const SystemConfig& config,
                                             util::PeerId source_peer,
                                             double media_seconds,
                                             const graph::EdgePath& path) {
  util::SimDuration total = 0;
  util::PeerId prev = source_peer;
  for (const graph::ServiceEdge* e : path) {
    total += network.estimate_delay(prev, e->peer,
                                    stream_bytes(e->type.input, media_seconds));
    const double ops =
        media::transcode_ops_per_media_second(e->type, config.cost_model) *
        media_seconds;
    total += estimate_service_time(info, config, e->peer, ops,
                                   e->type.type_key());
    prev = e->peer;
  }
  return total;
}

}  // namespace

PathEvaluation evaluate_path(const InfoBase& info, const net::Transport& network,
                             const SystemConfig& config,
                             const AllocationRequest& request,
                             const ObjectLocation& source,
                             const media::MediaFormat& target,
                             const graph::EdgePath& path) {
  PathEvaluation ev;
  ev.source_peer = source.peer;
  ev.object = source.object;
  ev.target = target;

  const double media_seconds = source.object.duration_s;
  util::SimDuration total = 0;
  util::PeerId prev = source.peer;

  for (const graph::ServiceEdge* e : path) {
    graph::ServiceHop hop;
    hop.service = e->id;
    hop.peer = e->peer;
    hop.type = e->type;
    hop.estimated_ops =
        media::transcode_ops_per_media_second(e->type, config.cost_model) *
        media_seconds;
    hop.estimated_transfer_time = network.estimate_delay(
        prev, e->peer, stream_bytes(e->type.input, media_seconds));
    hop.estimated_compute_time = estimate_service_time(
        info, config, e->peer, hop.estimated_ops, e->type.type_key());
    total += hop.estimated_transfer_time + hop.estimated_compute_time;
    // Streaming at realtime rate consumes ops/media-second continuously.
    ev.load_deltas.emplace_back(
        e->peer,
        media::transcode_ops_per_media_second(e->type, config.cost_model));
    ev.hops.push_back(std::move(hop));
    prev = e->peer;
  }
  // Final delivery to the sink.
  total += network.estimate_delay(prev, request.sink,
                                  stream_bytes(target, media_seconds));

  ev.exec_time = total;
  ev.feasible = request.now + total <= request.absolute_deadline();
  ev.fairness_after = info.fairness().index_with(ev.load_deltas);

  double max_util = 0.0;
  for (const auto& [peer, delta] : ev.load_deltas) {
    const auto* rec = info.domain().member(peer);
    if (rec == nullptr) continue;
    const double cap = rec->spec.capacity_ops_per_s;
    max_util =
        std::max(max_util, (info.effective_load(peer) + delta) / cap);
  }
  ev.max_utilization_after = max_util;
  return ev;
}

std::vector<PathEvaluation> enumerate_candidates(
    const InfoBase& info, const net::Transport& network,
    const SystemConfig& config, const AllocationRequest& request,
    bool exhaustive, graph::SearchStats* stats) {
  std::vector<PathEvaluation> out;
  graph::SearchStats accumulated;
  const auto* locs = info.locations(request.q.object);
  if (locs == nullptr) {
    if (stats) *stats = accumulated;
    return out;
  }
  const auto& gr = info.resource_graph();

  for (const ObjectLocation& source : *locs) {
    for (const media::MediaFormat& target : request.q.acceptable_formats) {
      // Direct delivery: object already in an acceptable format.
      if (source.object.format == target) {
        out.push_back(evaluate_path(info, network, config, request, source,
                                    target, {}));
        continue;
      }
      const auto v_init = gr.find_state(source.object.format);
      const auto v_sol = gr.find_state(target);
      if (!v_init || !v_sol) continue;

      // QoS feasibility is applied post-hoc (evaluate_path sets
      // ev.feasible) rather than as an in-BFS prune: pruning interacts
      // with Fig. 3's visited-on-expansion rule — an infeasible partial
      // arriving first can claim a vertex a feasible one would have
      // expanded — so the enumeration result would depend on the deadline
      // and could never be memoized. Unpruned enumeration depends only on
      // graph structure, which is what makes the path cache's answers
      // exactly interchangeable with fresh searches. The exhaustive
      // ablation keeps its in-walk prune: DFS over simple paths visits
      // every extension independently, so there pruning == post-filter.
      graph::SearchStats s;
      std::vector<graph::EdgePath> paths;
      if (exhaustive) {
        const auto prune = [&](const graph::EdgePath& partial) {
          const auto cost = partial_cost(info, network, config, source.peer,
                                         source.object.duration_s, partial);
          return request.now + cost <= request.absolute_deadline();
        };
        paths = graph::all_simple_paths(gr, *v_init, *v_sol,
                                        config.exhaustive_max_hops, prune, &s);
      } else if (config.enable_path_cache) {
        paths = info.path_cache().bfs_paths(gr, *v_init, *v_sol, &s);
      } else {
        paths = graph::bfs_paths(gr, *v_init, *v_sol, {}, &s);
      }
      accumulated.vertices_popped += s.vertices_popped;
      accumulated.sequences_enqueued += s.sequences_enqueued;
      accumulated.candidates_found += s.candidates_found;
      accumulated.pruned += s.pruned;
      accumulated.cache_hits += s.cache_hits;
      accumulated.cache_misses += s.cache_misses;

      for (const auto& path : paths) {
        out.push_back(evaluate_path(info, network, config, request, source,
                                    target, path));
      }
    }
  }
  if (stats) *stats = accumulated;
  return out;
}

AllocationResult finalize(const AllocationRequest& request,
                          const PathEvaluation& winner) {
  AllocationResult result;
  result.found = true;
  result.fairness_after = winner.fairness_after;
  result.estimated_execution = winner.exec_time;
  result.load_deltas = winner.load_deltas;
  result.sg = graph::ServiceGraph(request.task, winner.source_peer,
                                  winner.object.id, request.sink,
                                  winner.object.format, winner.target);
  for (const auto& hop : winner.hops) result.sg.add_hop(hop);
  assert(result.sg.chain_consistent());
  return result;
}

namespace {

// Shared driver: enumerate candidates, filter feasible, delegate the final
// choice to `pick`.
template <typename Pick>
AllocationResult allocate_with(const InfoBase& info,
                               const net::Transport& network,
                               const SystemConfig& config,
                               const AllocationRequest& request,
                               bool exhaustive, Pick pick) {
  AllocationResult result;
  auto candidates = enumerate_candidates(info, network, config, request,
                                         exhaustive, &result.search);
  result.candidates_considered = candidates.size();

  std::vector<const PathEvaluation*> feasible;
  for (const auto& c : candidates) {
    if (c.feasible) feasible.push_back(&c);
  }
  result.candidates_feasible = feasible.size();

  if (feasible.empty()) {
    if (info.locations(request.q.object) == nullptr) {
      result.failure_reason = "no-object";
    } else if (candidates.empty() && result.search.pruned == 0) {
      result.failure_reason = "no-path";
    } else {
      // Either complete candidates missed the deadline, or QoS pruning cut
      // every partial sequence before it could complete.
      result.failure_reason = "deadline";
    }
    return result;
  }
  const PathEvaluation* winner = pick(feasible);
  auto finalized = finalize(request, *winner);
  finalized.search = result.search;
  finalized.candidates_considered = result.candidates_considered;
  finalized.candidates_feasible = result.candidates_feasible;
  return finalized;
}

class PaperBfsAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [](const std::vector<const PathEvaluation*>& feasible) {
          // Fig. 3's f_max loop: keep the allocation with maximum fairness.
          const PathEvaluation* best = feasible.front();
          for (const auto* c : feasible) {
            if (c->fairness_after > best->fairness_after) best = c;
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::PaperBfs; }
};

class ExhaustiveAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/true,
        [](const std::vector<const PathEvaluation*>& feasible) {
          const PathEvaluation* best = feasible.front();
          for (const auto* c : feasible) {
            if (c->fairness_after > best->fairness_after) best = c;
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::Exhaustive; }
};

class MinHopAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [](const std::vector<const PathEvaluation*>& feasible) {
          const PathEvaluation* best = feasible.front();
          for (const auto* c : feasible) {
            if (c->hops.size() < best->hops.size()) best = c;
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::MinHop; }
};

class RandomAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng& rng) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [&rng](const std::vector<const PathEvaluation*>& feasible) {
          return feasible[rng.below(feasible.size())];
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::Random; }
};

class LeastLoadedAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [](const std::vector<const PathEvaluation*>& feasible) {
          const PathEvaluation* best = feasible.front();
          for (const auto* c : feasible) {
            if (c->max_utilization_after < best->max_utilization_after) {
              best = c;
            }
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::LeastLoaded; }
};

// Ordering helpers shared by the deterministic streaming policies. Candidate
// enumeration order is itself deterministic, but these make the tie-breaks
// explicit instead of relying on "first enumerated wins".
[[nodiscard]] bool hops_lex_less(const PathEvaluation& a,
                                 const PathEvaluation& b) {
  const std::size_t n = std::min(a.hops.size(), b.hops.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.hops[i].peer != b.hops[i].peer) return a.hops[i].peer < b.hops[i].peer;
  }
  return a.hops.size() < b.hops.size();
}

class MaxUtilAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [&info](const std::vector<const PathEvaluation*>& feasible) {
          // Utilization-maximizing placement after the P2P live-streaming
          // scheme: consolidate work onto the peers already carrying load
          // (best-fit packing) so idle capacity stays in one piece for
          // future chains. Score = mean post-assignment utilization of the
          // touched peers; direct delivery touches none and wastes nothing,
          // so it scores above every transcoding chain.
          const auto mean_util = [&info](const PathEvaluation& ev) {
            if (ev.load_deltas.empty()) {
              return std::numeric_limits<double>::infinity();
            }
            double sum = 0.0;
            for (const auto& [peer, delta] : ev.load_deltas) {
              const auto* rec = info.domain().member(peer);
              if (rec == nullptr) continue;
              sum += (info.effective_load(peer) + delta) /
                     rec->spec.capacity_ops_per_s;
            }
            return sum / static_cast<double>(ev.load_deltas.size());
          };
          const PathEvaluation* best = feasible.front();
          double best_score = mean_util(*best);
          for (const auto* c : feasible) {
            const double score = mean_util(*c);
            if (score > best_score ||
                (score == best_score &&
                 (c->hops.size() < best->hops.size() ||
                  (c->hops.size() == best->hops.size() &&
                   hops_lex_less(*c, *best))))) {
              best = c;
              best_score = score;
            }
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::MaxUtil; }
};

class DetStreamAllocator final : public Allocator {
 public:
  AllocationResult allocate(const InfoBase& info, const net::Transport& network,
                            const SystemConfig& config,
                            const AllocationRequest& request,
                            util::Rng&) const override {
    return allocate_with(
        info, network, config, request, /*exhaustive=*/false,
        [](const std::vector<const PathEvaluation*>& feasible) {
          // Deterministic near-optimal chain placement: minimize estimated
          // completion time outright (the greedy bound from the
          // deterministic P2P streaming line of work), with fully ordered
          // tie-breaks — fewer hops, then lexicographic hop peer ids — so
          // the choice never depends on enumeration order or the RNG.
          const PathEvaluation* best = feasible.front();
          for (const auto* c : feasible) {
            if (c->exec_time < best->exec_time ||
                (c->exec_time == best->exec_time &&
                 (c->hops.size() < best->hops.size() ||
                  (c->hops.size() == best->hops.size() &&
                   hops_lex_less(*c, *best))))) {
              best = c;
            }
          }
          return best;
        });
  }
  AllocatorKind kind() const override { return AllocatorKind::DetStream; }
};

}  // namespace

std::unique_ptr<Allocator> make_allocator(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::PaperBfs: return std::make_unique<PaperBfsAllocator>();
    case AllocatorKind::Exhaustive:
      return std::make_unique<ExhaustiveAllocator>();
    case AllocatorKind::MinHop: return std::make_unique<MinHopAllocator>();
    case AllocatorKind::Random: return std::make_unique<RandomAllocator>();
    case AllocatorKind::LeastLoaded:
      return std::make_unique<LeastLoadedAllocator>();
    case AllocatorKind::MaxUtil: return std::make_unique<MaxUtilAllocator>();
    case AllocatorKind::DetStream:
      return std::make_unique<DetStreamAllocator>();
  }
  throw std::invalid_argument("make_allocator: bad kind");
}

}  // namespace p2prm::core

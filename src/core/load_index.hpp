// Incrementally maintained utilization view of the RM's domain members.
//
// Admission (§3.2) needs two aggregate questions answered per task query:
// "is every member above the overload threshold?" (a minimum-utilization
// query) and "what is the mean domain utilization?" (a ratio of totals).
// The info base answers both from this index in O(1)/O(log n) instead of
// re-walking every member and its commitment list, updating it at exactly
// the points where a peer's effective load changes. info_base_test.cpp
// checks equivalence against the fresh linear recomputation.
#pragma once

#include <limits>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/ids.hpp"

namespace p2prm::core {

class LoadIndex {
 public:
  // Upserts a peer with its current effective load and fixed capacity.
  void set(util::PeerId peer, double load, double capacity_ops);
  void remove(util::PeerId peer);
  void clear();

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] bool empty() const { return recs_.empty(); }

  // Utilization = load / capacity; a peer with no capacity counts as fully
  // utilized (matches admission's convention). Unknown peer: -1.
  [[nodiscard]] double utilization(util::PeerId peer) const;
  // Minimum utilization across members; +infinity when empty.
  [[nodiscard]] double min_utilization() const;
  [[nodiscard]] double total_load() const { return total_load_; }
  [[nodiscard]] double total_capacity() const { return total_capacity_; }
  // total_load / total_capacity, or 1.0 when the domain has no capacity.
  [[nodiscard]] double mean_utilization() const;

  // Members ordered by (utilization, peer id) ascending — the load-sorted
  // peer view. Deterministic: ties break on the id.
  [[nodiscard]] std::vector<util::PeerId> by_utilization(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;

 private:
  struct Rec {
    double load = 0.0;
    double capacity = 0.0;
    double util = 0.0;
  };
  static double util_of(double load, double capacity) {
    return capacity > 0.0 ? load / capacity : 1.0;
  }

  std::unordered_map<util::PeerId, Rec> recs_;
  std::set<std::pair<double, util::PeerId>> ordered_;
  double total_load_ = 0.0;
  double total_capacity_ = 0.0;
};

}  // namespace p2prm::core

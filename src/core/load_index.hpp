// Incrementally maintained utilization view of the RM's domain members.
//
// Admission (§3.2) needs two aggregate questions answered per task query:
// "is every member above the overload threshold?" (a minimum-utilization
// query) and "what is the mean domain utilization?" (a ratio of totals).
// The info base answers both from this index, updating it at exactly the
// points where a peer's effective load changes. info_base_test.cpp checks
// equivalence against the fresh linear recomputation.
//
// Storage is struct-of-arrays: parallel dense vectors of load / capacity /
// utilization plus an open-addressing id -> slot map. set() — the hot path,
// hit on every profiler report — is two array stores and a pair of totals
// updates; the ordered view and the minimum are recomputed on demand from
// the contiguous utilization array (domains are small, the scan is a few
// cache lines) with the minimum cached until the next mutation.
//
// The running totals follow the exact same subtract-then-add sequence the
// original node-based index used, so the incrementally accumulated floats —
// and everything downstream that compares or prints them — are bit-identical
// across the rewrite.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/flat_map.hpp"
#include "util/ids.hpp"

namespace p2prm::core {

class LoadIndex {
 public:
  // Upserts a peer with its current effective load and fixed capacity.
  void set(util::PeerId peer, double load, double capacity_ops);
  void remove(util::PeerId peer);
  void clear();

  [[nodiscard]] std::size_t size() const { return peers_.size(); }
  [[nodiscard]] bool empty() const { return peers_.empty(); }

  // Utilization = load / capacity; a peer with no capacity counts as fully
  // utilized (matches admission's convention). Unknown peer: -1.
  [[nodiscard]] double utilization(util::PeerId peer) const;
  // Minimum utilization across members; +infinity when empty.
  [[nodiscard]] double min_utilization() const;
  [[nodiscard]] double total_load() const { return total_load_; }
  [[nodiscard]] double total_capacity() const { return total_capacity_; }
  // total_load / total_capacity, or 1.0 when the domain has no capacity.
  [[nodiscard]] double mean_utilization() const;

  // Members ordered by (utilization, peer id) ascending — the load-sorted
  // peer view. Deterministic: ties break on the id.
  [[nodiscard]] std::vector<util::PeerId> by_utilization(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;

  // Calls fn(peer, load, capacity, utilization) per member in slot order
  // (unordered — fold commutatively or sort). The hierarchical aggregate
  // builder (InfoBase::build_aggregate) fills its histograms from this.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      fn(peers_[i], loads_[i], caps_[i], utils_[i]);
    }
  }

 private:
  static double util_of(double load, double capacity) {
    return capacity > 0.0 ? load / capacity : 1.0;
  }

  // Parallel arrays, one slot per member; slot_of_ maps id -> slot.
  // remove() swaps the last slot in, so slots stay dense but unordered —
  // every ordered answer sorts explicitly.
  std::vector<util::PeerId> peers_;
  std::vector<double> loads_;
  std::vector<double> caps_;
  std::vector<double> utils_;
  util::FlatMap<util::PeerId, std::uint32_t> slot_of_;
  double total_load_ = 0.0;
  double total_capacity_ = 0.0;
  mutable double cached_min_ = std::numeric_limits<double>::infinity();
  mutable bool min_valid_ = true;
};

}  // namespace p2prm::core

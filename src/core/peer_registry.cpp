#include "core/peer_registry.hpp"

#include <cassert>

#include "core/peer_node.hpp"
#include "obs/metrics_registry.hpp"

namespace p2prm::core {

std::string_view peer_state_name(PeerState s) {
  switch (s) {
    case PeerState::Lazy: return "lazy";
    case PeerState::Live: return "live";
    case PeerState::Left: return "left";
    case PeerState::Crashed: return "crashed";
  }
  return "?";
}

PeerRegistry::PeerRegistry() = default;
PeerRegistry::~PeerRegistry() = default;

void PeerRegistry::reserve(std::size_t n) {
  id_.reserve(n);
  capacity_ops_.reserve(n);
  link_up_.reserve(n);
  link_down_.reserve(n);
  online_since_.reserve(n);
  x_.reserve(n);
  y_.reserve(n);
  state_.reserve(n);
  node_slot_.reserve(n);
  row_of_.reserve(n);
}

std::uint32_t PeerRegistry::add_row(const overlay::PeerSpec& spec,
                                    net::Coordinates at, PeerState state) {
  assert(spec.id.valid() && !contains(spec.id));
  const auto row = static_cast<std::uint32_t>(id_.size());
  id_.push_back(spec.id.value());
  capacity_ops_.push_back(spec.capacity_ops_per_s);
  link_up_.push_back(spec.link.uplink_bytes_per_s);
  link_down_.push_back(spec.link.downlink_bytes_per_s);
  online_since_.push_back(spec.online_since);
  x_.push_back(at.x);
  y_.push_back(at.y);
  state_.push_back(state);
  node_slot_.push_back(kNoSlot);
  row_of_.insert_or_assign(spec.id.value(), row);
  return row;
}

overlay::PeerSpec PeerRegistry::spec(std::uint32_t row) const {
  overlay::PeerSpec s;
  s.id = util::PeerId{id_[row]};
  s.capacity_ops_per_s = capacity_ops_[row];
  s.link.uplink_bytes_per_s = link_up_[row];
  s.link.downlink_bytes_per_s = link_down_[row];
  s.online_since = online_since_[row];
  return s;
}

PeerNode* PeerRegistry::attach_node(std::uint32_t row,
                                    std::unique_ptr<PeerNode> node) {
  assert(node_slot_[row] == kNoSlot);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    nodes_[slot] = std::move(node);
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
  }
  node_slot_[row] = slot;
  ++materialized_;
  return nodes_[slot].get();
}

std::unique_ptr<PeerNode> PeerRegistry::detach_node(std::uint32_t row) {
  const std::uint32_t slot = node_slot_[row];
  if (slot == kNoSlot) return nullptr;
  node_slot_[row] = kNoSlot;
  free_slots_.push_back(slot);
  --materialized_;
  return std::move(nodes_[slot]);
}

void PeerRegistry::stash_inventory(util::PeerId id, PeerInventory inventory) {
  if (inventory.objects.empty() && inventory.services.empty()) return;
  stashed_.insert_or_assign(
      id.value(), std::make_unique<PeerInventory>(std::move(inventory)));
}

PeerInventory PeerRegistry::take_inventory(util::PeerId id) {
  std::unique_ptr<PeerInventory>* stash = stashed_.find(id.value());
  if (stash == nullptr) return PeerInventory{};
  PeerInventory out = std::move(**stash);
  stashed_.erase(id.value());
  return out;
}

std::size_t PeerRegistry::footprint_bytes() const {
  std::size_t bytes = 0;
  bytes += id_.capacity() * sizeof(std::uint64_t);
  bytes += capacity_ops_.capacity() * sizeof(double);
  bytes += link_up_.capacity() * sizeof(double);
  bytes += link_down_.capacity() * sizeof(double);
  bytes += online_since_.capacity() * sizeof(util::SimTime);
  bytes += x_.capacity() * sizeof(double);
  bytes += y_.capacity() * sizeof(double);
  bytes += state_.capacity() * sizeof(PeerState);
  bytes += node_slot_.capacity() * sizeof(std::uint32_t);
  // The open-addressing table: key + value + used byte per bucket.
  bytes += row_of_.capacity() *
           (sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1);
  return bytes;
}

void PeerRegistry::publish(obs::MetricsRegistry& registry) const {
  std::size_t lazy = 0, left = 0, crashed = 0;
  for (const PeerState s : state_) {
    if (s == PeerState::Lazy) ++lazy;
    else if (s == PeerState::Left) ++left;
    else if (s == PeerState::Crashed) ++crashed;
  }
  registry.gauge("core.peers.total").set(static_cast<double>(id_.size()));
  registry.gauge("core.peers.materialized")
      .set(static_cast<double>(materialized_));
  registry.gauge("core.peers.lazy").set(static_cast<double>(lazy));
  registry.gauge("core.peers.left").set(static_cast<double>(left));
  registry.gauge("core.peers.crashed").set(static_cast<double>(crashed));
  registry.gauge("core.peers.idle_bytes_per_peer")
      .set(id_.empty() ? 0.0
                       : static_cast<double>(footprint_bytes()) /
                             static_cast<double>(id_.size()));
}

}  // namespace p2prm::core

// The production message registry: wire tag -> decoder.
//
// core is the lowest layer that sees every module defining messages
// (overlay membership, gossip digests, the task protocol), so the decode
// table lives here rather than in net. The socket transport receives
// decode_message as a plain function pointer (net::SocketTransport does
// not link against core).
//
// Registration is manual; wire_registry.cpp keeps the list and enforces
// at compile time that every registered tag is unique. The codec
// round-trip property test iterates entries() so a type added here is
// automatically fuzzed.
#pragma once

#include <span>
#include <string_view>

#include "net/codec.hpp"
#include "net/message.hpp"
#include "net/wire.hpp"

namespace p2prm::core {

struct WireEntry {
  net::WireType type = net::WireType::Invalid;
  std::string_view type_name;
  // Decodes one message body from `r`; returns nullptr when the body is
  // malformed (r latches !ok(), or trailing bytes remain).
  net::MessagePtr (*decode)(net::Reader& r) = nullptr;
};

// Every production message type, ordered by tag.
[[nodiscard]] std::span<const WireEntry> wire_registry();

// Tag-dispatch decode of one frame body. Returns nullptr for unknown tags
// and malformed bodies (the socket transport counts those and drops the
// frame; a hostile or corrupt peer must not take the process down).
[[nodiscard]] net::MessagePtr decode_message(net::WireType type,
                                             net::Reader& r);

}  // namespace p2prm::core

#include "core/load_index.hpp"

namespace p2prm::core {

void LoadIndex::set(util::PeerId peer, double load, double capacity_ops) {
  const auto it = recs_.find(peer);
  if (it != recs_.end()) {
    ordered_.erase({it->second.util, peer});
    total_load_ -= it->second.load;
    total_capacity_ -= it->second.capacity;
  }
  Rec rec{load, capacity_ops, util_of(load, capacity_ops)};
  ordered_.insert({rec.util, peer});
  total_load_ += rec.load;
  total_capacity_ += rec.capacity;
  recs_[peer] = rec;
}

void LoadIndex::remove(util::PeerId peer) {
  const auto it = recs_.find(peer);
  if (it == recs_.end()) return;
  ordered_.erase({it->second.util, peer});
  total_load_ -= it->second.load;
  total_capacity_ -= it->second.capacity;
  recs_.erase(it);
  if (recs_.empty()) {
    // Re-zero so incremental float error cannot outlive the members.
    total_load_ = 0.0;
    total_capacity_ = 0.0;
  }
}

void LoadIndex::clear() {
  recs_.clear();
  ordered_.clear();
  total_load_ = 0.0;
  total_capacity_ = 0.0;
}

double LoadIndex::utilization(util::PeerId peer) const {
  const auto it = recs_.find(peer);
  return it == recs_.end() ? -1.0 : it->second.util;
}

double LoadIndex::min_utilization() const {
  if (ordered_.empty()) return std::numeric_limits<double>::infinity();
  return ordered_.begin()->first;
}

double LoadIndex::mean_utilization() const {
  return total_capacity_ > 0.0 ? total_load_ / total_capacity_ : 1.0;
}

std::vector<util::PeerId> LoadIndex::by_utilization(std::size_t limit) const {
  std::vector<util::PeerId> out;
  out.reserve(ordered_.size() < limit ? ordered_.size() : limit);
  for (const auto& [_, peer] : ordered_) {
    if (out.size() >= limit) break;
    out.push_back(peer);
  }
  return out;
}

}  // namespace p2prm::core

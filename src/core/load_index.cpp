#include "core/load_index.hpp"

#include <algorithm>
#include <utility>

namespace p2prm::core {

void LoadIndex::set(util::PeerId peer, double load, double capacity_ops) {
  // Totals keep the original subtract-old-then-add-new float sequence so
  // the accumulated values stay bit-identical to the pre-SoA index.
  if (const std::uint32_t* slot = slot_of_.find(peer)) {
    const std::uint32_t i = *slot;
    total_load_ -= loads_[i];
    total_capacity_ -= caps_[i];
    loads_[i] = load;
    caps_[i] = capacity_ops;
    utils_[i] = util_of(load, capacity_ops);
  } else {
    const auto i = static_cast<std::uint32_t>(peers_.size());
    peers_.push_back(peer);
    loads_.push_back(load);
    caps_.push_back(capacity_ops);
    utils_.push_back(util_of(load, capacity_ops));
    slot_of_.try_emplace(peer, i);
  }
  total_load_ += load;
  total_capacity_ += capacity_ops;
  min_valid_ = false;
}

void LoadIndex::remove(util::PeerId peer) {
  const std::uint32_t* slot = slot_of_.find(peer);
  if (slot == nullptr) return;
  const std::uint32_t i = *slot;
  total_load_ -= loads_[i];
  total_capacity_ -= caps_[i];
  const auto last = static_cast<std::uint32_t>(peers_.size() - 1);
  if (i != last) {
    peers_[i] = peers_[last];
    loads_[i] = loads_[last];
    caps_[i] = caps_[last];
    utils_[i] = utils_[last];
    slot_of_.insert_or_assign(peers_[i], i);
  }
  peers_.pop_back();
  loads_.pop_back();
  caps_.pop_back();
  utils_.pop_back();
  slot_of_.erase(peer);
  if (peers_.empty()) {
    // Re-zero so incremental float error cannot outlive the members.
    total_load_ = 0.0;
    total_capacity_ = 0.0;
  }
  min_valid_ = false;
}

void LoadIndex::clear() {
  peers_.clear();
  loads_.clear();
  caps_.clear();
  utils_.clear();
  slot_of_.clear();
  total_load_ = 0.0;
  total_capacity_ = 0.0;
  cached_min_ = std::numeric_limits<double>::infinity();
  min_valid_ = true;
}

double LoadIndex::utilization(util::PeerId peer) const {
  const std::uint32_t* slot = slot_of_.find(peer);
  return slot == nullptr ? -1.0 : utils_[*slot];
}

double LoadIndex::min_utilization() const {
  if (!min_valid_) {
    double m = std::numeric_limits<double>::infinity();
    for (const double u : utils_) m = std::min(m, u);
    cached_min_ = m;
    min_valid_ = true;
  }
  return cached_min_;
}

double LoadIndex::mean_utilization() const {
  return total_capacity_ > 0.0 ? total_load_ / total_capacity_ : 1.0;
}

std::vector<util::PeerId> LoadIndex::by_utilization(std::size_t limit) const {
  std::vector<std::pair<double, util::PeerId>> order;
  order.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    order.emplace_back(utils_[i], peers_[i]);
  }
  std::sort(order.begin(), order.end());
  std::vector<util::PeerId> out;
  out.reserve(order.size() < limit ? order.size() : limit);
  for (const auto& [_, peer] : order) {
    if (out.size() >= limit) break;
    out.push_back(peer);
  }
  return out;
}

}  // namespace p2prm::core

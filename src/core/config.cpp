#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace p2prm::core {

std::string_view allocator_name(AllocatorKind k) {
  switch (k) {
    case AllocatorKind::PaperBfs: return "paper-bfs";
    case AllocatorKind::Exhaustive: return "exhaustive";
    case AllocatorKind::MinHop: return "min-hop";
    case AllocatorKind::Random: return "random";
    case AllocatorKind::LeastLoaded: return "least-loaded";
    case AllocatorKind::MaxUtil: return "max-util";
    case AllocatorKind::DetStream: return "det-stream";
  }
  return "?";
}

AllocatorKind allocator_from_name(std::string_view name) {
  if (name == "paper-bfs") return AllocatorKind::PaperBfs;
  if (name == "exhaustive") return AllocatorKind::Exhaustive;
  if (name == "min-hop") return AllocatorKind::MinHop;
  if (name == "random") return AllocatorKind::Random;
  if (name == "least-loaded") return AllocatorKind::LeastLoaded;
  if (name == "max-util") return AllocatorKind::MaxUtil;
  if (name == "det-stream") return AllocatorKind::DetStream;
  throw std::invalid_argument(
      "unknown allocator: " + std::string(name) +
      " (valid: paper-bfs, exhaustive, min-hop, random, least-loaded, "
      "max-util, det-stream)");
}

std::string_view transport_kind_name(TransportKind k) {
  switch (k) {
    case TransportKind::Sim: return "sim";
    case TransportKind::Socket: return "socket";
  }
  return "?";
}

TransportKind transport_kind_from_name(std::string_view name) {
  if (name == "sim") return TransportKind::Sim;
  if (name == "socket") return TransportKind::Socket;
  throw std::invalid_argument("unknown transport: " + std::string(name));
}

}  // namespace p2prm::core

// Deterministic scenario specifications for the simulation fuzzer.
//
// A ScenarioSpec is the complete, self-contained description of one fuzz
// run: topology size and heterogeneity, workload mix, churn schedule, link
// faults and the timed partition/crash events of a fault::FaultPlan. Every
// stochastic decision in the run derives from the spec's seed, so a spec
// reproduces byte-for-byte — and the whole spec round-trips through a
// single-line repro string (`repro()` / `parse()`) that CI prints when a
// seed fails and developers replay with `p2prm_fuzz --repro=...`.
// See docs/TESTING.md for the repro workflow.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::check {

// Stochastic message-level faults applied to every link (mirrors
// fault::LinkFaults, kept separate so the spec serializes independently of
// that struct's evolution).
struct LinkFaultSpec {
  double loss = 0.0;     // drop probability
  double dup = 0.0;      // duplicate probability
  double reorder = 0.0;  // reorder probability
  util::SimDuration delay = 0;   // fixed extra one-way delay
  util::SimDuration jitter = 0;  // + U[0, jitter] per message

  [[nodiscard]] bool trivial() const {
    return loss == 0.0 && dup == 0.0 && reorder == 0.0 && delay == 0 &&
           jitter == 0;
  }
  friend bool operator==(const LinkFaultSpec&, const LinkFaultSpec&) = default;
};

// Isolate the current primary RM at `at` (workload-relative), heal after
// `hold`.
struct PartitionSpec {
  util::SimDuration at = 0;
  util::SimDuration hold = util::seconds(10);
  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

// Crash a peer at `at` (workload-relative); restart it `down` later.
// down < 0 means the peer never comes back.
struct CrashSpec {
  util::SimDuration at = 0;
  util::SimDuration down = util::seconds(10);
  bool target_rm = true;       // victim = current primary RM at fire time
  std::uint32_t peer_index = 0;  // else: index into the bootstrap order
  friend bool operator==(const CrashSpec&, const CrashSpec&) = default;
};

struct ScenarioSpec {
  std::uint64_t seed = 1;

  // --- topology / population -----------------------------------------------
  std::uint32_t peers = 12;
  std::uint32_t max_domain_size = 8;
  std::uint32_t het = 1;  // workload::CapacityDistribution

  // --- workload mix ---------------------------------------------------------
  std::uint32_t task_cap = 20;       // hard cap on submitted tasks
  double arrival_rate = 0.8;         // Poisson, tasks per second
  util::SimDuration workload = util::seconds(25);
  util::SimDuration drain = util::seconds(80);

  // --- churn schedule -------------------------------------------------------
  bool churn = false;
  double mean_session_s = 45.0;
  double crash_fraction = 0.5;
  double mean_offline_s = 8.0;
  bool respawn = true;

  // --- faults ---------------------------------------------------------------
  LinkFaultSpec link{};
  std::vector<PartitionSpec> partitions;
  std::vector<CrashSpec> crashes;

  // --- ablation toggles (flipped by the oracle replays) ---------------------
  bool path_cache = true;
  bool spans = false;

  // --- lazy population scale (docs/SCALING.md) ------------------------------
  // lazy_peers flat registry rows are added after bootstrap. During the
  // workload window every boundary tick materializes wave_peers of them
  // (round-robin) and demotes idle materialized peers, fuzzing the
  // materialize/demote lifecycle under workload, churn and faults.
  // hierarchical flips both hierarchical-infobase knobs (aggregate
  // decisions + aggregate gossip).
  std::uint32_t lazy_peers = 0;
  std::uint32_t wave_peers = 0;
  bool hierarchical = false;

  // --- streaming overlay (docs/STREAMING.md) --------------------------------
  // When `stream` is set the runner drives a stream::StreamEngine on the
  // same simulator: stream_channels live channels, stream_viewers churning
  // viewers (plus a stream_flash flash crowd when nonzero), one chunk every
  // stream_chunk_ms, all under the placement policy stream_alloc indexes
  // ({paper-bfs, max-util, det-stream}). The engine couples to the fault
  // plan through a liveness probe and its accounting identity is checked at
  // every event-loop boundary ("stream.accounting"). Stream scenarios are
  // sim-transport, single-thread only (the engine shares the sequential
  // event loop), so the parallel oracle is skipped for them.
  bool stream = false;
  std::uint32_t stream_channels = 2;
  std::uint32_t stream_viewers = 8;
  std::uint32_t stream_flash = 0;
  std::uint32_t stream_chunk_ms = 500;
  std::uint32_t stream_alloc = 0;  // {0: paper-bfs, 1: max-util, 2: det-stream}

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  // Draws a random scenario, fully determined by `seed`.
  [[nodiscard]] static ScenarioSpec generate(std::uint64_t seed);

  // Scale-flavored scenario: generate(seed) plus `lazy_peers` lazy rows,
  // a drawn materialization wave size and (half the seeds) hierarchical
  // mode. CI's nightly scale job sweeps these at >= 100k lazy rows.
  [[nodiscard]] static ScenarioSpec generate_scale(std::uint64_t seed,
                                                   std::uint32_t lazy_peers);

  // Streaming-flavored scenario: generate(seed) plus a streaming overlay
  // drawn from a dedicated rng stream, so the base scenario `seed` already
  // names is untouched. `p2prm_fuzz --stream` sweeps these.
  [[nodiscard]] static ScenarioSpec generate_stream(std::uint64_t seed);

  // Single-line repro string: "p2prm-fuzz/1;seed=..;peers=..;...". Contains
  // every field, so parse(repro()) == *this.
  [[nodiscard]] std::string repro() const;
  [[nodiscard]] static std::optional<ScenarioSpec> parse(std::string_view s);

  // The fault plan this spec describes, with all event times shifted by
  // `t0` (the workload start, i.e. the sim time right after bootstrap).
  // `bootstrap_order` resolves CrashSpec::peer_index to concrete ids.
  [[nodiscard]] fault::FaultPlan fault_plan(
      util::SimTime t0, const std::vector<util::PeerId>& bootstrap_order) const;
};

}  // namespace p2prm::check

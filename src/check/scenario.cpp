#include "check/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "util/rng.hpp"

namespace p2prm::check {
namespace {

constexpr std::string_view kSchema = "p2prm-fuzz/1";

// Shortest round-trip double formatting (same contract as util::JsonWriter):
// parse(fmt(x)) == x exactly, and the text is identical across runs.
std::string fmt_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool parse_double(std::string_view s, double& out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

ScenarioSpec ScenarioSpec::generate(std::uint64_t seed) {
  // Decorrelate from the System/workload RNGs, which also derive from the
  // spec seed: the generator choosing the scenario must not mirror the
  // streams that later execute it.
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eed5eed5eed5eedULL);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.peers = static_cast<std::uint32_t>(8 + rng.below(17));           // 8..24
  spec.max_domain_size = static_cast<std::uint32_t>(4 + rng.below(9));  // 4..12
  spec.het = static_cast<std::uint32_t>(rng.below(4));
  spec.task_cap = static_cast<std::uint32_t>(8 + rng.below(25));        // 8..32
  spec.arrival_rate = rng.uniform(0.4, 1.4);
  const double work_s = rng.uniform(18.0, 35.0);
  spec.workload = util::from_seconds(work_s);
  spec.drain = util::seconds(80);

  spec.churn = rng.bernoulli(0.5);
  if (spec.churn) {
    spec.mean_session_s = rng.uniform(25.0, 70.0);
    spec.crash_fraction = rng.uniform(0.0, 1.0);
    spec.mean_offline_s = rng.uniform(4.0, 10.0);
    spec.respawn = true;
  }

  if (rng.bernoulli(0.5)) {
    spec.link.loss = rng.uniform(0.0, 0.04);
    spec.link.dup = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.02) : 0.0;
    spec.link.reorder = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
    spec.link.delay = util::milliseconds(static_cast<std::int64_t>(rng.below(20)));
    spec.link.jitter =
        util::milliseconds(static_cast<std::int64_t>(rng.below(15)));
  }

  // Timed events land inside the workload window with enough margin that
  // every partition heals (and most crash victims restart) well before the
  // drain's quiescence checks.
  const auto event_at = [&] {
    return util::from_seconds(rng.uniform(4.0, std::max(5.0, work_s - 4.0)));
  };
  const std::size_t n_partitions = rng.below(3);
  for (std::size_t i = 0; i < n_partitions; ++i) {
    PartitionSpec p;
    p.at = event_at();
    p.hold = util::from_seconds(rng.uniform(4.0, 12.0));
    spec.partitions.push_back(p);
  }
  const std::size_t n_crashes = rng.below(3);
  for (std::size_t i = 0; i < n_crashes; ++i) {
    CrashSpec c;
    c.at = event_at();
    c.down = rng.bernoulli(0.8)
                 ? util::from_seconds(rng.uniform(4.0, 15.0))
                 : util::SimDuration{-1};
    c.target_rm = rng.bernoulli(0.5);
    // Draw the index either way (keeps the seed->spec stream stable), but
    // normalize it for rm-targeted crashes: the repro string serializes
    // "rm" without an index, so a nonzero index would not round-trip.
    const auto index = static_cast<std::uint32_t>(rng.below(spec.peers));
    c.peer_index = c.target_rm ? 0 : index;
    spec.crashes.push_back(c);
  }
  // Deterministic order regardless of draw order (also gives the shrinker a
  // stable candidate enumeration).
  std::sort(spec.partitions.begin(), spec.partitions.end(),
            [](const PartitionSpec& a, const PartitionSpec& b) {
              return a.at < b.at;
            });
  std::sort(spec.crashes.begin(), spec.crashes.end(),
            [](const CrashSpec& a, const CrashSpec& b) { return a.at < b.at; });
  return spec;
}

ScenarioSpec ScenarioSpec::generate_scale(std::uint64_t seed,
                                          std::uint32_t lazy_peers) {
  ScenarioSpec spec = generate(seed);
  // Separate stream: adding scale fields must not disturb the base
  // scenario that `seed` already names.
  util::Rng rng(seed * 0x2545f4914f6cdd1dULL + 0x5ca1ab1e5ca1ab1eULL);
  spec.lazy_peers = lazy_peers;
  spec.wave_peers = static_cast<std::uint32_t>(32 + rng.below(225));  // 32..256
  spec.hierarchical = rng.bernoulli(0.5);
  // Hundreds of joiners into domains of 4..12 members converge through
  // serial split cascades — minutes of sim time, legitimately. Give the
  // drain room to reach quiescence instead of failing membership checks
  // on a still-settling overlay.
  spec.drain = util::seconds(600);
  return spec;
}

ScenarioSpec ScenarioSpec::generate_stream(std::uint64_t seed) {
  ScenarioSpec spec = generate(seed);
  // Separate stream: the streaming overlay must not disturb the base
  // scenario that `seed` already names (same idiom as generate_scale).
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x57e40f0e57e40f0eULL);
  spec.stream = true;
  spec.stream_channels = static_cast<std::uint32_t>(1 + rng.below(3));  // 1..3
  spec.stream_viewers = static_cast<std::uint32_t>(4 + rng.below(13));  // 4..16
  spec.stream_flash =
      rng.bernoulli(0.5) ? static_cast<std::uint32_t>(8 + rng.below(17))  // 8..24
                         : 0;
  spec.stream_chunk_ms =
      static_cast<std::uint32_t>(250 + 50 * rng.below(16));  // 250..1000
  spec.stream_alloc = static_cast<std::uint32_t>(rng.below(3));
  return spec;
}

std::string ScenarioSpec::repro() const {
  std::ostringstream out;
  out << kSchema << ";seed=" << seed << ";peers=" << peers
      << ";dom=" << max_domain_size << ";het=" << het << ";cap=" << task_cap
      << ";rate=" << fmt_double(arrival_rate) << ";work=" << workload
      << ";drain=" << drain << ";churn=" << (churn ? 1 : 0)
      << ";sess=" << fmt_double(mean_session_s)
      << ";cfrac=" << fmt_double(crash_fraction)
      << ";off=" << fmt_double(mean_offline_s) << ";resp=" << (respawn ? 1 : 0)
      << ";loss=" << fmt_double(link.loss) << ";dup=" << fmt_double(link.dup)
      << ";reord=" << fmt_double(link.reorder) << ";delay=" << link.delay
      << ";jit=" << link.jitter << ";cache=" << (path_cache ? 1 : 0)
      << ";spans=" << (spans ? 1 : 0) << ";lazy=" << lazy_peers
      << ";wavep=" << wave_peers << ";hier=" << (hierarchical ? 1 : 0)
      << ";strm=" << (stream ? 1 : 0) << ";schan=" << stream_channels
      << ";sview=" << stream_viewers << ";sflash=" << stream_flash
      << ";schunk=" << stream_chunk_ms << ";salloc=" << stream_alloc;
  out << ";part=";
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    if (i) out << '+';
    out << partitions[i].at << ':' << partitions[i].hold;
  }
  out << ";crash=";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i) out << '+';
    out << crashes[i].at << ':' << crashes[i].down << ':';
    if (crashes[i].target_rm) {
      out << "rm";
    } else {
      out << 'p' << crashes[i].peer_index;
    }
  }
  return out.str();
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view s) {
  const auto fields = split(s, ';');
  if (fields.empty() || fields[0] != kSchema) return std::nullopt;
  ScenarioSpec spec;
  spec.partitions.clear();
  spec.crashes.clear();

  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto eq = fields[i].find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = fields[i].substr(0, eq);
    const auto val = fields[i].substr(eq + 1);

    const auto as_u32 = [&](std::uint32_t& out) {
      std::uint64_t v;
      if (!parse_u64(val, v) || v > 0xffffffffULL) return false;
      out = static_cast<std::uint32_t>(v);
      return true;
    };
    const auto as_bool = [&](bool& out) {
      if (val != "0" && val != "1") return false;
      out = val == "1";
      return true;
    };

    bool ok = true;
    if (key == "seed") {
      ok = parse_u64(val, spec.seed);
    } else if (key == "peers") {
      ok = as_u32(spec.peers);
    } else if (key == "dom") {
      ok = as_u32(spec.max_domain_size);
    } else if (key == "het") {
      ok = as_u32(spec.het);
    } else if (key == "cap") {
      ok = as_u32(spec.task_cap);
    } else if (key == "rate") {
      ok = parse_double(val, spec.arrival_rate);
    } else if (key == "work") {
      ok = parse_i64(val, spec.workload);
    } else if (key == "drain") {
      ok = parse_i64(val, spec.drain);
    } else if (key == "churn") {
      ok = as_bool(spec.churn);
    } else if (key == "sess") {
      ok = parse_double(val, spec.mean_session_s);
    } else if (key == "cfrac") {
      ok = parse_double(val, spec.crash_fraction);
    } else if (key == "off") {
      ok = parse_double(val, spec.mean_offline_s);
    } else if (key == "resp") {
      ok = as_bool(spec.respawn);
    } else if (key == "loss") {
      ok = parse_double(val, spec.link.loss);
    } else if (key == "dup") {
      ok = parse_double(val, spec.link.dup);
    } else if (key == "reord") {
      ok = parse_double(val, spec.link.reorder);
    } else if (key == "delay") {
      ok = parse_i64(val, spec.link.delay);
    } else if (key == "jit") {
      ok = parse_i64(val, spec.link.jitter);
    } else if (key == "cache") {
      ok = as_bool(spec.path_cache);
    } else if (key == "spans") {
      ok = as_bool(spec.spans);
    } else if (key == "lazy") {
      ok = as_u32(spec.lazy_peers);
    } else if (key == "wavep") {
      ok = as_u32(spec.wave_peers);
    } else if (key == "hier") {
      ok = as_bool(spec.hierarchical);
    } else if (key == "strm") {
      ok = as_bool(spec.stream);
    } else if (key == "schan") {
      ok = as_u32(spec.stream_channels);
    } else if (key == "sview") {
      ok = as_u32(spec.stream_viewers);
    } else if (key == "sflash") {
      ok = as_u32(spec.stream_flash);
    } else if (key == "schunk") {
      ok = as_u32(spec.stream_chunk_ms);
    } else if (key == "salloc") {
      ok = as_u32(spec.stream_alloc);
    } else if (key == "part") {
      if (val.empty()) continue;
      for (const auto entry : split(val, '+')) {
        const auto parts = split(entry, ':');
        PartitionSpec p;
        if (parts.size() != 2 || !parse_i64(parts[0], p.at) ||
            !parse_i64(parts[1], p.hold)) {
          return std::nullopt;
        }
        spec.partitions.push_back(p);
      }
    } else if (key == "crash") {
      if (val.empty()) continue;
      for (const auto entry : split(val, '+')) {
        const auto parts = split(entry, ':');
        CrashSpec c;
        if (parts.size() != 3 || !parse_i64(parts[0], c.at) ||
            !parse_i64(parts[1], c.down) || parts[2].empty()) {
          return std::nullopt;
        }
        if (parts[2] == "rm") {
          c.target_rm = true;
          c.peer_index = 0;
        } else if (parts[2][0] == 'p') {
          c.target_rm = false;
          std::uint64_t idx;
          if (!parse_u64(parts[2].substr(1), idx) || idx > 0xffffffffULL) {
            return std::nullopt;
          }
          c.peer_index = static_cast<std::uint32_t>(idx);
        } else {
          return std::nullopt;
        }
        spec.crashes.push_back(c);
      }
    } else {
      return std::nullopt;  // unknown key: refuse rather than drift silently
    }
    if (!ok) return std::nullopt;
  }
  if (spec.peers == 0 || spec.max_domain_size == 0 || spec.workload <= 0 ||
      spec.drain < 0 || spec.het > 3) {
    return std::nullopt;
  }
  if (spec.stream &&
      (spec.stream_channels == 0 || spec.stream_chunk_ms == 0 ||
       spec.stream_alloc > 2)) {
    return std::nullopt;
  }
  return spec;
}

fault::FaultPlan ScenarioSpec::fault_plan(
    util::SimTime t0, const std::vector<util::PeerId>& bootstrap_order) const {
  fault::FaultPlan plan;
  plan.seed = seed * 1000003ULL + 7;
  plan.default_link.drop_probability = link.loss;
  plan.default_link.duplicate_probability = link.dup;
  plan.default_link.reorder_probability = link.reorder;
  plan.default_link.extra_delay = link.delay;
  plan.default_link.delay_jitter = link.jitter;
  for (const auto& p : partitions) {
    plan.isolate_primary_rm(t0 + p.at, t0 + p.at + p.hold);
  }
  for (const auto& c : crashes) {
    const util::SimTime restart_at =
        c.down < 0 ? util::kTimeInfinity : t0 + c.at + c.down;
    if (c.target_rm) {
      plan.crash_restart_primary_rm(t0 + c.at, restart_at);
    } else if (!bootstrap_order.empty()) {
      const auto victim = bootstrap_order[c.peer_index % bootstrap_order.size()];
      plan.crash_restart(victim, t0 + c.at, restart_at);
    }
  }
  return plan;
}

}  // namespace p2prm::check

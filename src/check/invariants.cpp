#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/info_base.hpp"
#include "core/peer_node.hpp"
#include "core/resource_manager.hpp"
#include "core/system.hpp"
#include "gossip/gossip_engine.hpp"
#include "net/network.hpp"
#include "sched/job.hpp"
#include "sched/processor.hpp"

namespace p2prm::check {

std::string_view check_phase_name(CheckPhase phase) {
  switch (phase) {
    case CheckPhase::Boundary: return "boundary";
    case CheckPhase::Quiescent: return "quiescent";
  }
  return "?";
}

void InvariantChecker::add(std::string name, bool quiescent_only, Fn fn) {
  entries_.push_back(Entry{std::move(name), quiescent_only, false,
                           std::move(fn)});
}

std::size_t InvariantChecker::check(core::System& system, CheckPhase phase) {
  std::size_t found = 0;
  for (auto& entry : entries_) {
    if (entry.fired) continue;  // report each broken invariant once
    if (entry.quiescent_only && phase != CheckPhase::Quiescent) continue;
    auto failure = entry.fn(system, phase);
    if (!failure) continue;
    entry.fired = true;
    ++found;
    violations_.push_back(
        Violation{entry.name, system.simulator().now(), std::move(*failure)});
  }
  return found;
}

void InvariantChecker::reset() {
  violations_.clear();
  for (auto& entry : entries_) entry.fired = false;
}

std::vector<std::string> InvariantChecker::invariant_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry.name);
  return names;
}

namespace {

using core::System;

// --- ledger conservation ----------------------------------------------------

std::optional<std::string> ledger_conservation(System& system,
                                               CheckPhase phase) {
  const auto& ledger = system.ledger();
  const std::size_t accounted = ledger.completed() + ledger.rejected() +
                                ledger.failed() + ledger.orphaned() +
                                ledger.pending();
  if (ledger.submitted() != accounted) {
    std::ostringstream msg;
    msg << "submitted=" << ledger.submitted() << " != completed="
        << ledger.completed() << " + rejected=" << ledger.rejected()
        << " + failed=" << ledger.failed() << " + orphaned="
        << ledger.orphaned() << " + pending=" << ledger.pending();
    return msg.str();
  }
  if (ledger.missed() > ledger.completed()) {
    return "missed count exceeds completed count";
  }
  if (ledger.admitted() > ledger.submitted()) {
    return "admitted count exceeds submitted count";
  }
  if (phase != CheckPhase::Quiescent) return std::nullopt;

  // After orphan_pending() nothing may still be pending, and every terminal
  // record must be self-consistent.
  if (ledger.pending() != 0) {
    return "tasks still pending after quiescence";
  }
  for (std::uint64_t id = 0;; ++id) {
    const auto* r = ledger.record(util::TaskId{id});
    if (r == nullptr) break;
    if (r->status == core::TaskStatus::Completed) {
      if (r->finished < r->submitted) {
        return "task " + util::to_string(r->id) + " finished before submission";
      }
      const bool late = r->finished > r->submitted + r->deadline;
      if (r->missed_deadline != late) {
        return "task " + util::to_string(r->id) +
               " missed_deadline flag disagrees with timestamps";
      }
    }
    if ((r->status == core::TaskStatus::Rejected ||
         r->status == core::TaskStatus::Failed) &&
        r->reason.empty()) {
      return "task " + util::to_string(r->id) + " terminal without a reason";
    }
  }
  return std::nullopt;
}

// --- network conservation -----------------------------------------------------

std::optional<std::string> net_conservation(System& system, CheckPhase) {
  const auto& s = system.transport().stats();
  // Every send (plus injected duplicates) ends in at most one terminal
  // counter; the remainder is still in flight.
  const std::uint64_t terminal = s.messages_delivered + s.messages_dropped +
                                 s.messages_partitioned +
                                 s.messages_undeliverable +
                                 s.messages_fault_dropped;
  if (terminal > s.messages_sent + s.messages_duplicated) {
    std::ostringstream msg;
    msg << "terminal outcomes " << terminal << " exceed sends "
        << s.messages_sent << " + duplicates " << s.messages_duplicated;
    return msg.str();
  }
  return std::nullopt;
}

// --- LoadIndex vs. linear recompute -------------------------------------------

std::optional<std::string> load_index_equivalence(System& system, CheckPhase) {
  const util::SimTime now = system.simulator().now();
  for (const auto rm_id : system.resource_manager_ids()) {
    auto& info = system.peer(rm_id)->resource_manager()->info();
    info.purge_commitments(now);  // same normalization admission applies
    const auto& index = info.load_index();
    const auto members = info.domain().member_ids();
    if (index.size() != members.size()) {
      std::ostringstream msg;
      msg << "RM " << rm_id << ": index tracks " << index.size()
          << " peers, domain has " << members.size();
      return msg.str();
    }
    double total_load = 0.0, total_capacity = 0.0;
    double min_util = std::numeric_limits<double>::infinity();
    for (const auto member : members) {
      const auto* rec = info.domain().member(member);
      const double load = info.effective_load(member);
      const double capacity = rec->spec.capacity_ops_per_s;
      const double fresh = capacity > 0.0 ? load / capacity : 1.0;
      const double indexed = index.utilization(member);
      if (std::abs(indexed - fresh) >
          1e-9 * std::max({1.0, std::abs(indexed), std::abs(fresh)})) {
        std::ostringstream msg;
        msg << "RM " << rm_id << " member " << member << ": indexed util "
            << indexed << " != recomputed " << fresh;
        return msg.str();
      }
      total_load += load;
      total_capacity += capacity;
      min_util = std::min(min_util, fresh);
    }
    if (!members.empty()) {
      const double fresh_mean =
          total_capacity > 0.0 ? total_load / total_capacity : 1.0;
      if (std::abs(index.mean_utilization() - fresh_mean) > 1e-9) {
        std::ostringstream msg;
        msg << "RM " << rm_id << ": indexed mean " << index.mean_utilization()
            << " != recomputed " << fresh_mean;
        return msg.str();
      }
      if (std::abs(index.min_utilization() - min_util) > 1e-9) {
        std::ostringstream msg;
        msg << "RM " << rm_id << ": indexed min " << index.min_utilization()
            << " != recomputed " << min_util;
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

// --- per-dispatch LLS laxity ordering -----------------------------------------

std::optional<std::string> lls_laxity_ordering(System& system, CheckPhase) {
  // The processor schedules exact laxity-crossover preemption checks, so
  // between events the running job carries the minimum laxity *up to the
  // policy's anti-thrashing hysteresis*: a waiting job may lead by at most
  // kLlsLaxityQuantum before its crossover check fires (scheduler.hpp).
  // The extra microsecond covers integer-nanosecond rounding of crossover
  // instants.
  constexpr util::SimDuration kTolerance =
      sched::kLlsLaxityQuantum + util::microseconds(1);
  for (const auto peer_id : system.alive_peer_ids()) {
    auto& processor = system.peer(peer_id)->processor();
    if (processor.policy() != sched::Policy::LeastLaxity) continue;
    const auto view = processor.laxity_view();
    const auto running = std::find_if(
        view.begin(), view.end(),
        [](const sched::JobLaxity& j) { return j.running; });
    if (running == view.end()) continue;
    for (const auto& waiting : view) {
      if (waiting.running) continue;
      if (waiting.laxity + kTolerance < running->laxity) {
        std::ostringstream msg;
        msg << "peer " << peer_id << ": running job "
            << util::to_string(running->id) << " laxity "
            << util::to_seconds(running->laxity) << "s but waiting job "
            << util::to_string(waiting.id) << " has laxity "
            << util::to_seconds(waiting.laxity) << "s";
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

// --- RM <-> backup info-base convergence ---------------------------------------

// Canonical digest of the parts of a snapshot that are stable at
// quiescence: membership, inventory, active tasks, summary version. Load
// samples are excluded — they trail the profiler feedback loop by design.
std::string snapshot_signature(const core::InfoBaseSnapshot& snap) {
  std::ostringstream out;
  out << "domain=" << util::to_string(snap.domain.id())
      << " ver=" << snap.summary_version << '\n';
  out << "members:";
  for (const auto id : snap.domain.member_ids()) {
    out << ' ' << util::to_string(id);
  }
  out << '\n';
  std::vector<std::string> lines;
  for (const auto& [peer, objects] : snap.objects) {
    std::vector<std::uint64_t> ids;
    ids.reserve(objects.size());
    for (const auto& o : objects) ids.push_back(o.id.value());
    std::sort(ids.begin(), ids.end());
    std::ostringstream line;
    line << "obj " << util::to_string(peer) << ':';
    for (const auto id : ids) line << ' ' << id;
    lines.push_back(line.str());
  }
  for (const auto& [peer, services] : snap.services) {
    std::vector<std::uint64_t> ids;
    ids.reserve(services.size());
    for (const auto& s : services) ids.push_back(s.id.value());
    std::sort(ids.begin(), ids.end());
    std::ostringstream line;
    line << "svc " << util::to_string(peer) << ':';
    for (const auto id : ids) line << ' ' << id;
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  for (const auto& line : lines) out << line << '\n';
  std::vector<std::uint64_t> task_ids;
  for (const auto& t : snap.tasks) task_ids.push_back(t.sg.task().value());
  std::sort(task_ids.begin(), task_ids.end());
  out << "tasks:";
  for (const auto id : task_ids) out << ' ' << id;
  out << '\n';
  return out.str();
}

std::optional<std::string> backup_convergence(System& system, CheckPhase) {
  if (!system.config().enable_backup_rm) return std::nullopt;
  for (const auto rm_id : system.resource_manager_ids()) {
    auto* rm = system.peer(rm_id)->resource_manager();
    const auto backup = rm->info().domain().backup();
    if (!backup) continue;
    auto* backup_node = system.peer(*backup);
    // Only judge a settled pairing: the backup must be alive, attached to
    // this RM, know it is the designated backup, and hold a synced copy.
    // (A designation that rotated within the last sync period legitimately
    // has no copy yet — that is lag, not divergence.)
    if (backup_node == nullptr || !backup_node->alive() ||
        !backup_node->joined() || backup_node->current_rm() != rm_id ||
        backup_node->designated_backup() != *backup ||
        !backup_node->backup_snapshot().has_value()) {
      continue;
    }
    const std::string want = snapshot_signature(rm->info().snapshot());
    const std::string got = snapshot_signature(*backup_node->backup_snapshot());
    if (want != got) {
      std::ostringstream msg;
      msg << "RM " << rm_id << " and backup " << util::to_string(*backup)
          << " diverge at quiescence:\n--- RM ---\n"
          << want << "--- backup ---\n"
          << got;
      return msg.str();
    }
  }
  return std::nullopt;
}

// --- Bloom summary supersets ----------------------------------------------------

std::optional<std::string> summary_superset(System& system, CheckPhase) {
  // Current (domain -> summary_version) census of live RMs.
  struct Actual {
    core::ResourceManager* rm;
    std::uint64_t version;
  };
  std::vector<std::pair<util::DomainId, Actual>> census;
  for (const auto rm_id : system.resource_manager_ids()) {
    auto* rm = system.peer(rm_id)->resource_manager();
    census.emplace_back(rm->domain_id(),
                        Actual{rm, rm->info().summary_version()});
  }

  for (const auto rm_id : system.resource_manager_ids()) {
    auto* rm = system.peer(rm_id)->resource_manager();
    for (const auto& [domain, actual] : census) {
      const auto* summary = rm->gossip().summary_of(domain);
      if (summary == nullptr) continue;  // never learned of it: lag, not a bug
      if (rm->domain_id() == domain && summary->version != actual.version) {
        std::ostringstream msg;
        msg << "RM " << rm_id << " publishes version " << summary->version
            << " of its own domain but the info base is at version "
            << actual.version;
        return msg.str();
      }
      // Freshest-wins gossip may lag behind the source; only a copy that
      // claims to be current must actually contain the domain's inventory.
      if (summary->version != actual.version) continue;
      const auto& info = actual.rm->info();
      auto objects = info.all_objects();
      std::sort(objects.begin(), objects.end());
      for (const auto object : objects) {
        if (!summary->objects.possibly_contains(object)) {
          std::ostringstream msg;
          msg << "RM " << rm_id << ": SumO of domain "
              << util::to_string(domain) << " (version " << summary->version
              << ") lacks object " << util::to_string(object);
          return msg.str();
        }
      }
      std::vector<std::uint64_t> service_keys;
      for (const auto* edge : info.resource_graph().all_services()) {
        service_keys.push_back(edge->type.type_key());
      }
      std::sort(service_keys.begin(), service_keys.end());
      for (const auto key : service_keys) {
        if (!summary->services.possibly_contains(key)) {
          std::ostringstream msg;
          msg << "RM " << rm_id << ": SumS of domain "
              << util::to_string(domain) << " (version " << summary->version
              << ") lacks service key " << key;
          return msg.str();
        }
      }
    }
  }
  return std::nullopt;
}

// --- post-drain cleanliness -----------------------------------------------------

std::optional<std::string> core_cleanliness(System& system, CheckPhase) {
  const util::SimTime elapsed = system.simulator().now();
  for (const auto peer_id : system.alive_peer_ids()) {
    auto* node = system.peer(peer_id);
    if (node->active_sessions() != 0) {
      return "peer " + util::to_string(peer_id) + " leaked " +
             std::to_string(node->active_sessions()) + " hop sessions";
    }
    if (node->buffered_early_data() != 0) {
      return "peer " + util::to_string(peer_id) + " leaked early stream data";
    }
    if (node->processor().queue_length() != 0) {
      return "peer " + util::to_string(peer_id) + " still has " +
             std::to_string(node->processor().queue_length()) +
             " queued jobs after the drain";
    }
    if (node->processor().busy_time() > elapsed) {
      return "peer " + util::to_string(peer_id) +
             " busy longer than wall time";
    }
  }
  for (const auto rm_id : system.resource_manager_ids()) {
    auto* rm = system.peer(rm_id)->resource_manager();
    const auto running = rm->info().running_task_ids();
    if (!running.empty()) {
      return "RM " + util::to_string(rm_id) + " still tracks " +
             std::to_string(running.size()) + " running tasks";
    }
    rm->info().purge_commitments(system.simulator().now());
    for (const auto member : rm->info().domain().member_ids()) {
      const auto* rec = rm->info().domain().member(member);
      if (rm->info().effective_load(member) >= rec->spec.capacity_ops_per_s &&
          rec->spec.capacity_ops_per_s > 0.0) {
        return "RM " + util::to_string(rm_id) + " member " +
               util::to_string(member) +
               " carries a full-capacity load after the drain (stale "
               "commitment?)";
      }
    }
    const double fairness = rm->info().current_fairness();
    if (fairness < 0.0 || fairness > 1.0 + 1e-9) {
      return "RM " + util::to_string(rm_id) + " fairness index " +
             std::to_string(fairness) + " out of [0,1]";
    }
  }
  return std::nullopt;
}

// --- parallel engine counter conservation ------------------------------------

std::optional<std::string> parallel_counters(System& system, CheckPhase) {
  const auto* engine = system.simulator().parallel_engine();
  if (engine == nullptr) return std::nullopt;

  std::uint64_t executed = 0, scheduled = 0, posts_out = 0, posts_in = 0;
  for (sim::ShardId s = 0; s < engine->shards(); ++s) {
    const auto& c = engine->shard_counters(s);
    executed += c.executed;
    scheduled += c.scheduled;
    posts_out += c.posts_out;
    posts_in += c.posts_in;
  }
  if (executed != system.simulator().events_executed()) {
    std::ostringstream msg;
    msg << "per-shard executed sum " << executed
        << " != simulator events_executed "
        << system.simulator().events_executed();
    return msg.str();
  }
  if (scheduled != system.simulator().events_scheduled()) {
    std::ostringstream msg;
    msg << "per-shard scheduled sum " << scheduled
        << " != simulator events_scheduled "
        << system.simulator().events_scheduled();
    return msg.str();
  }
  const auto& stats = engine->stats();
  if (posts_out != stats.cross_shard_messages ||
      posts_in != stats.cross_shard_messages ||
      stats.merged_messages != stats.cross_shard_messages) {
    std::ostringstream msg;
    msg << "cross-shard flow unbalanced: posts_out=" << posts_out
        << " posts_in=" << posts_in
        << " merged=" << stats.merged_messages
        << " global=" << stats.cross_shard_messages;
    return msg.str();
  }
  if (stats.lookahead_violations != 0) {
    return "lookahead violated " +
           std::to_string(stats.lookahead_violations) + " times";
  }
  // Stronger than the lookahead check: an event merged below its shard's
  // clock was delivered into the executed past — out-of-order execution
  // the conservative protocol must make impossible.
  if (stats.causality_violations != 0) {
    return std::to_string(stats.causality_violations) +
           " event(s) delivered into a shard's executed past";
  }
  // Mirror bookkeeping vs. physical shard-queue occupancy: live counts must
  // agree exactly; the mirror's tombstones can only trail the physical ones
  // (per-shard heads prune lazily, no later than the global order does).
  if (engine->live() != engine->physical_live()) {
    std::ostringstream msg;
    msg << "mirror live " << engine->live() << " != physical live "
        << engine->physical_live();
    return msg.str();
  }
  if (engine->tombstones() < engine->physical_tombstones()) {
    std::ostringstream msg;
    msg << "mirror tombstones " << engine->tombstones()
        << " < physical tombstones " << engine->physical_tombstones();
    return msg.str();
  }
  return std::nullopt;
}

// --- membership sanity -----------------------------------------------------------

std::optional<std::string> membership_attached(System& system, CheckPhase) {
  std::size_t joined = 0;
  for (const auto peer_id : system.alive_peer_ids()) {
    auto* node = system.peer(peer_id);
    if (!node->joined()) continue;
    ++joined;
    auto* rm_node = system.peer(node->current_rm());
    if (rm_node == nullptr || !rm_node->alive()) {
      return "peer " + util::to_string(peer_id) +
             " is attached to dead RM " + util::to_string(node->current_rm());
    }
  }
  const std::size_t alive = system.alive_count();
  if (alive > 0 && joined < alive * 8 / 10) {
    return std::to_string(joined) + " of " + std::to_string(alive) +
           " survivors re-attached to a domain (< 80%)";
  }
  return std::nullopt;
}

}  // namespace

void InvariantChecker::register_defaults(InvariantChecker& checker) {
  checker.add("ledger.conservation", false, ledger_conservation);
  checker.add("net.conservation", false, net_conservation);
  checker.add("load_index.equivalence", false, load_index_equivalence);
  checker.add("sched.lls_laxity", false, lls_laxity_ordering);
  checker.add("rm.backup_convergence", true, backup_convergence);
  checker.add("gossip.summary_superset", true, summary_superset);
  checker.add("core.cleanliness", true, core_cleanliness);
  checker.add("membership.attached", true, membership_attached);
  checker.add("parallel.counters", false, parallel_counters);
}

InvariantChecker InvariantChecker::with_defaults() {
  InvariantChecker checker;
  register_defaults(checker);
  return checker;
}

}  // namespace p2prm::check

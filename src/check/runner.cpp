#include "check/runner.hpp"

#include <memory>
#include <optional>
#include <sstream>

#include "core/system.hpp"
#include "core/trace.hpp"
#include "media/catalog.hpp"
#include "net/network.hpp"
#include "stream/engine.hpp"
#include "util/rng.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"

namespace p2prm::check {
namespace {

// FNV-1a, the digest primitive used across the repo's byte-stable artifacts.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

// Observable-behavior digest. Excludes HopStarted/HopCompleted (the only
// events enable_spans adds) and all transport counters, so the cache-off and
// spans-on replays of a scenario must reproduce it exactly.
std::uint64_t behavior_digest(core::System& system, const core::Tracer& tracer) {
  std::uint64_t h = kFnvOffset;

  const auto& ledger = system.ledger();
  for (std::uint64_t id = 0;; ++id) {
    const auto* r = ledger.record(util::TaskId{id});
    if (r == nullptr) break;
    fnv_mix_u64(h, id);
    fnv_mix(h, core::task_status_name(r->status));
    fnv_mix_u64(h, static_cast<std::uint64_t>(r->submitted));
    fnv_mix_u64(h, static_cast<std::uint64_t>(r->finished));
    fnv_mix_u64(h, r->missed_deadline ? 1 : 0);
    fnv_mix(h, r->reason);
  }

  for (const auto& e : tracer.events()) {
    if (e.kind == core::TraceKind::HopStarted ||
        e.kind == core::TraceKind::HopCompleted) {
      continue;
    }
    fnv_mix_u64(h, static_cast<std::uint64_t>(e.at));
    fnv_mix(h, core::trace_kind_name(e.kind));
    fnv_mix_u64(h, e.peer.valid() ? e.peer.value() : ~0ULL);
    fnv_mix_u64(h, e.task.valid() ? e.task.value() : ~0ULL);
    fnv_mix_u64(h, e.domain.valid() ? e.domain.value() : ~0ULL);
    fnv_mix(h, e.detail);
  }

  for (const auto& d : system.domains()) {
    fnv_mix_u64(h, d.domain.value());
    fnv_mix_u64(h, d.rm.value());
    fnv_mix_u64(h, d.members);
  }
  for (const auto peer : system.alive_peer_ids()) {
    fnv_mix_u64(h, peer.value());
  }
  return h;
}

}  // namespace

RunResult run_scenario(const ScenarioSpec& spec, InvariantChecker& checker,
                       util::SimDuration boundary_period,
                       const InspectFn& inspect, unsigned threads,
                       const ConfigTweakFn& tweak) {
  core::SystemConfig sys;
  sys.seed = spec.seed;
  sys.max_domain_size = spec.max_domain_size;
  sys.enable_path_cache = spec.path_cache;
  sys.enable_spans = spec.spans;
  sys.enable_hierarchical_infobase = spec.hierarchical;
  sys.gossip_domain_aggregates = spec.hierarchical;
  // The streaming engine shares the sequential event loop (its callbacks
  // mutate engine state directly), so stream scenarios pin the base engine
  // to one thread; run_spec likewise skips the parallel oracle for them.
  sys.num_threads = spec.stream ? 1 : threads;
  // Tight enough that every admitted-but-doomed task is failed and its jobs
  // cancelled well inside the drain window.
  sys.task_gc_grace = util::seconds(15);
  if (tweak) tweak(sys);

  core::System system(sys);
  // Large capacity: a ring-buffer eviction would make the spans-on replay
  // (which records strictly more events) drop *different* non-hop events
  // and break the digest equivalence.
  core::Tracer tracer(std::size_t{1} << 20);
  system.set_tracer(&tracer);

  const media::Catalog catalog = media::ladder_catalog();
  util::Rng rng(spec.seed * 7919 + 17);

  workload::HeterogeneityConfig het;
  het.distribution =
      static_cast<workload::CapacityDistribution>(spec.het & 3u);

  workload::PopulationConfig pop;
  pop.object_count = std::max<std::size_t>(10, std::size_t{spec.peers} * 2);
  // Short objects: deadlines stay well under the drain horizon.
  pop.min_duration_s = 2.0;
  pop.max_duration_s = 5.0;

  workload::ProvisionConfig prov;
  workload::RequestConfig req;
  req.min_deadline_tightness = 1.2;
  req.max_deadline_tightness = 2.5;

  workload::ObjectPopulation population(catalog, pop, system, rng);
  workload::PeerFactory factory = workload::make_peer_factory(
      catalog, population, het, prov, system, rng);

  const auto bootstrap_order = workload::bootstrap_network(
      system, factory, spec.peers, util::seconds(5));
  const util::SimTime t0 = system.simulator().now();

  // Lazy population: flat registry rows only, materialized in waves at the
  // workload boundaries below. Specs are drawn from a dedicated stream so
  // the live population above is untouched.
  std::vector<util::PeerId> lazy_ids;
  if (spec.lazy_peers > 0) {
    system.reserve_peers(std::size_t{spec.peers} + spec.lazy_peers);
    util::Rng lazy_rng(spec.seed * 6271 + 29);
    lazy_ids.reserve(spec.lazy_peers);
    for (std::uint32_t i = 0; i < spec.lazy_peers; ++i) {
      lazy_ids.push_back(system.add_lazy_peer(
          workload::draw_peer_spec(het, lazy_rng, t0), {}));
    }
  }

  if (!spec.link.trivial() || !spec.partitions.empty() ||
      !spec.crashes.empty()) {
    // Fault injection runs on either transport: the sim Network hooks its
    // delivery pipeline, the socket transport installs a frame-granularity
    // shim executing the same plan (docs/TRANSPORT.md).
    system.install_fault_plan(spec.fault_plan(t0, bootstrap_order));
  }

  // Streaming overlay: a StreamEngine on the same simulator, its pool the
  // bootstrap population, its liveness probe the System's peer state — so
  // the fault plan and churn schedule break chains mid-stream. shared_ptr:
  // the stream.accounting closure registered on `checker` (whose lifetime
  // the caller owns) must never dangle.
  std::shared_ptr<stream::StreamEngine> engine;
  if (spec.stream) {
    workload::StreamingConfig scfg;
    scfg.seed = spec.seed;
    scfg.channels = spec.stream_channels;
    scfg.viewers = spec.stream_viewers;
    scfg.flash_crowd = spec.stream_flash;
    scfg.chunk_period = util::milliseconds(spec.stream_chunk_ms);
    // The stream spans the workload window; every outcome commits within
    // deadline + grace of the last chunk, well inside the drain.
    scfg.live_window = spec.workload;
    scfg.flash_at = spec.workload / 3;

    core::SystemConfig stream_sys = sys;
    static constexpr core::AllocatorKind kStreamAllocs[] = {
        core::AllocatorKind::PaperBfs, core::AllocatorKind::MaxUtil,
        core::AllocatorKind::DetStream};
    stream_sys.allocator = kStreamAllocs[spec.stream_alloc % 3];

    const workload::StreamPlan plan =
        workload::StreamingScenario(catalog, scfg)
            .build(bootstrap_order, bootstrap_order);
    engine = std::make_shared<stream::StreamEngine>(
        system.simulator(), system.transport(), stream_sys, plan);
    const auto& conversions = catalog.conversions();
    std::uint64_t stream_service = 1'000'000;
    std::size_t conv_cursor = 0;
    for (const util::PeerId id : bootstrap_order) {
      const core::PeerNode* node = system.peer(id);
      if (node == nullptr) continue;
      // Every conversion lands on several peers (round-robin over the
      // catalog): chain feasibility stays a policy question, not a lottery.
      std::vector<core::ServiceOffering> services;
      for (std::size_t s = 0; s < 4; ++s) {
        services.push_back(core::ServiceOffering{
            util::ServiceId{stream_service++},
            conversions[conv_cursor++ % conversions.size()]});
      }
      engine->add_peer(node->spec(), services);
    }
    engine->set_alive_probe([&system](util::PeerId p) {
      const core::PeerNode* n = system.peer(p);
      return n != nullptr && n->alive();
    });
    engine->start();
    checker.add("stream.accounting", /*quiescent_only=*/false,
                [engine](core::System&, CheckPhase) {
                  return engine->accounting_error();
                });
  }

  workload::RequestSynthesizer synthesizer(catalog, population, req);
  workload::WorkloadDriver driver(
      system, std::make_unique<workload::PoissonArrivals>(spec.arrival_rate),
      synthesizer);
  driver.on_submit = [&](util::TaskId) {
    if (driver.submitted() >= spec.task_cap) driver.stop();
  };

  std::optional<workload::ChurnDriver> churn;
  if (spec.churn) {
    workload::ChurnConfig cc;
    cc.mean_session_s = spec.mean_session_s;
    cc.crash_fraction = spec.crash_fraction;
    cc.respawn = spec.respawn;
    cc.mean_offline_s = spec.mean_offline_s;
    churn.emplace(system, factory, cc);
    churn->track_all_alive();
  }

  const util::SimTime end_work = t0 + spec.workload;
  const util::SimTime end = end_work + spec.drain;
  driver.start(end_work);

  // Lazy wave: a round-robin slice of the lazy population joins, then
  // anything idle (lazy joiners and bored bootstrap peers alike) demotes
  // back to rows — the materialize/demote lifecycle under fire. The wave
  // is staggered across the boundary window: a same-instant flood into a
  // small live core converges pathologically slowly, because every join
  // contact is another not-yet-joined wave-mate (bootstrap staggers its
  // joins for the same reason).
  std::size_t lazy_cursor = 0;
  const auto run_wave = [&] {
    if (lazy_ids.empty() || spec.wave_peers == 0) return;
    for (std::uint32_t i = 0; i < spec.wave_peers; ++i) {
      const util::PeerId id = lazy_ids[lazy_cursor];
      lazy_cursor = (lazy_cursor + 1) % lazy_ids.size();
      const auto offset = boundary_period * static_cast<std::int64_t>(i) /
                          static_cast<std::int64_t>(spec.wave_peers);
      system.simulator().schedule_after(
          offset, [&system, id] { system.materialize_peer(id); });
    }
    system.demote_idle_peers(2 * boundary_period);
  };

  // Event-loop-boundary checks: run_until stops *between* events, so every
  // boundary invariant is evaluated on a consistent world state. Waves run
  // only during the workload window — the drain must be able to reach
  // quiescence with no peers mid-join.
  // System::run_until (not simulator().run_until) so a socket-transport run
  // pumps its sockets between event batches via the realtime driver.
  const auto run_checked = [&](util::SimTime until, bool waves) {
    util::SimTime next = system.simulator().now() + boundary_period;
    while (next < until) {
      system.run_until(next);
      checker.check(system, CheckPhase::Boundary);
      if (waves) run_wave();
      next += boundary_period;
    }
    system.run_until(until);
    checker.check(system, CheckPhase::Boundary);
  };

  run_checked(end_work, /*waves=*/true);
  driver.stop();
  if (churn) churn->stop();  // drain undisturbed: quiescence must be reachable
  run_checked(end, /*waves=*/false);

  system.drain_transport(/*wall_ms=*/200);  // no-op in sim mode
  system.ledger().orphan_pending(system.simulator().now());
  checker.check(system, CheckPhase::Quiescent);
  if (inspect) inspect(system);

  RunResult result;
  result.violations = checker.violations();
  result.digest = behavior_digest(system, tracer);
  if (engine) {
    // Fold every chunk outcome in: the determinism / cache / span oracles
    // now also prove the streaming overlay byte-stable.
    fnv_mix_u64(result.digest, engine->digest());
  }
  result.end_time = system.simulator().now();

  const auto& ledger = system.ledger();
  result.submitted = ledger.submitted();
  result.completed = ledger.completed();
  result.rejected = ledger.rejected();
  result.failed = ledger.failed();
  result.orphaned = ledger.orphaned();
  result.missed = ledger.missed();
  result.trace_events = tracer.total_recorded();
  result.net_sent = system.transport().stats().messages_sent;
  result.net_delivered = system.transport().stats().messages_delivered;
  result.domains = system.domains().size();
  result.alive = system.alive_count();
  return result;
}

RunResult run_scenario(const ScenarioSpec& spec) {
  auto checker = InvariantChecker::with_defaults();
  return run_scenario(spec, checker);
}

RunResult run_scenario(const ScenarioSpec& spec, unsigned threads) {
  auto checker = InvariantChecker::with_defaults();
  return run_scenario(spec, checker, util::seconds(2), {}, threads);
}

SeedOutcome run_spec(const ScenarioSpec& spec, bool oracles,
                     unsigned parallel_threads, unsigned base_threads,
                     const ConfigTweakFn& tweak) {
  SeedOutcome outcome;
  outcome.spec = spec;
  {
    auto checker = InvariantChecker::with_defaults();
    outcome.result =
        run_scenario(spec, checker, util::seconds(2), {}, base_threads, tweak);
  }
  if (!oracles || !outcome.result.ok()) return outcome;

  const auto oracle_violation = [&](std::string name, std::string message) {
    outcome.result.violations.push_back(Violation{
        std::move(name), outcome.result.end_time, std::move(message)});
  };

  // Determinism: the same spec must reproduce the same digest bit-for-bit.
  {
    const RunResult replay = run_scenario(spec);
    if (!replay.ok()) {
      oracle_violation("oracle.determinism",
                       "replay of a clean run produced violations: " +
                           replay.violations.front().invariant);
    } else if (replay.digest != outcome.result.digest) {
      std::ostringstream msg;
      msg << "digest " << std::hex << outcome.result.digest
          << " != replay digest " << replay.digest;
      oracle_violation("oracle.determinism", msg.str());
    }
  }

  // Path-cache ablation: caching is an optimization, never a decision change.
  {
    ScenarioSpec flipped = spec;
    flipped.path_cache = !flipped.path_cache;
    const RunResult replay = run_scenario(flipped);
    if (replay.digest != outcome.result.digest) {
      std::ostringstream msg;
      msg << "cache=" << spec.path_cache << " digest " << std::hex
          << outcome.result.digest << " != cache=" << flipped.path_cache
          << " digest " << replay.digest;
      oracle_violation("oracle.path_cache", msg.str());
    }
  }

  // Span ablation: enable_spans may only add Hop* events, which the digest
  // ignores; everything else must be untouched.
  if (!spec.spans) {
    ScenarioSpec flipped = spec;
    flipped.spans = true;
    const RunResult replay = run_scenario(flipped);
    if (replay.digest != outcome.result.digest) {
      std::ostringstream msg;
      msg << "spans-off digest " << std::hex << outcome.result.digest
          << " != spans-on digest " << replay.digest;
      oracle_violation("oracle.spans", msg.str());
    }
  }

  // Parallel ablation: the sharded engine must reproduce the sequential run
  // bit-for-bit — same digest, and its per-shard counters must satisfy the
  // parallel.counters invariant (checked inside the replay).
  // Stream scenarios are pinned to the sequential engine (the streaming
  // overlay shares its event loop), so the parallel ablation is vacuous.
  if (parallel_threads >= 2 && !spec.stream) {
    const RunResult replay = run_scenario(spec, parallel_threads);
    if (!replay.ok()) {
      oracle_violation("oracle.parallel",
                       "parallel replay produced violations: " +
                           replay.violations.front().invariant);
    } else if (replay.digest != outcome.result.digest) {
      std::ostringstream msg;
      msg << "sequential digest " << std::hex << outcome.result.digest
          << " != " << std::dec << parallel_threads << "-thread digest "
          << std::hex << replay.digest;
      oracle_violation("oracle.parallel", msg.str());
    }
  }

  return outcome;
}

SeedOutcome fuzz_seed(std::uint64_t seed, bool oracles,
                      unsigned parallel_threads, unsigned base_threads) {
  return run_spec(ScenarioSpec::generate(seed), oracles, parallel_threads,
                  base_threads);
}

}  // namespace p2prm::check

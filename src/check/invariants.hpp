// System-wide invariants checked on event-loop boundaries.
//
// The fuzzer's oracle: properties that must hold for *every* scenario the
// generator can draw, regardless of faults, churn or workload. Boundary
// invariants hold at any instant between events (conservation laws, index
// equivalence, scheduling order); quiescent invariants additionally require
// the run to have drained (backup convergence, summary supersets,
// cleanliness). A violation is recorded once per invariant name with the
// simulated time and a diagnostic message; the fuzz driver then shrinks
// the scenario to a minimal repro (check/shrink.hpp).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace p2prm::core {
class System;
}

namespace p2prm::check {

enum class CheckPhase {
  Boundary,   // between event-loop slices, workload still running
  Quiescent,  // after the drain: no workload, churn or faults in flight
};
[[nodiscard]] std::string_view check_phase_name(CheckPhase phase);

struct Violation {
  std::string invariant;
  util::SimTime at = 0;
  std::string message;
};

class InvariantChecker {
 public:
  // Returns std::nullopt when the invariant holds, else a diagnostic.
  using Fn =
      std::function<std::optional<std::string>(core::System&, CheckPhase)>;

  InvariantChecker() = default;

  // An invariant with quiescent_only runs only in the Quiescent phase;
  // otherwise it runs in every phase.
  void add(std::string name, bool quiescent_only, Fn fn);

  // Runs every applicable invariant; records and returns the number of NEW
  // violations (each invariant reports at most once per run, so a broken
  // conservation law does not flood the report at every later boundary).
  std::size_t check(core::System& system, CheckPhase phase);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  void reset();

  [[nodiscard]] std::vector<std::string> invariant_names() const;

  // The default system-wide invariant set (docs/TESTING.md describes each):
  //   ledger.conservation      task accounting across admission/redirect/
  //                            drop/complete never loses or double-counts
  //   net.conservation         every send is delivered, dropped, partitioned
  //                            or undeliverable at most once
  //   load_index.equivalence   incremental LoadIndex == linear recompute
  //   sched.lls_laxity         per-dispatch least-laxity ordering
  //   rm.backup_convergence    RM and backup info bases agree at quiescence
  //   gossip.summary_superset  Bloom summaries ⊇ actual objects/services
  //   core.cleanliness         no leaked sessions/queues/commitments
  //   membership.attached      survivors re-attach to live domains
  static void register_defaults(InvariantChecker& checker);
  [[nodiscard]] static InvariantChecker with_defaults();

 private:
  struct Entry {
    std::string name;
    bool quiescent_only = false;
    bool fired = false;
    Fn fn;
  };
  std::vector<Entry> entries_;
  std::vector<Violation> violations_;
};

}  // namespace p2prm::check

#include "check/shrink.hpp"

#include <string>
#include <utility>
#include <vector>

#include "check/runner.hpp"

namespace p2prm::check {
namespace {

// Every candidate strictly reduces this well-founded measure, so the greedy
// loop terminates even without a run budget.
std::uint64_t measure(const ScenarioSpec& s) {
  std::uint64_t m = 0;
  m += s.partitions.size() * 16;
  m += s.crashes.size() * 16;
  if (s.churn) m += 12;
  if (!s.link.trivial()) m += 8;
  if (s.het != 0) m += 4;
  if (s.arrival_rate > 0.5) m += 2;
  m += s.peers;
  m += s.task_cap;
  m += static_cast<std::uint64_t>(util::to_seconds(s.workload));
  m += static_cast<std::uint64_t>(util::to_seconds(s.drain)) / 4;
  m += s.lazy_peers / 64 + (s.lazy_peers > 0 ? 1 : 0);
  m += s.wave_peers;
  if (s.hierarchical) m += 2;
  if (s.stream) {
    m += 6;
    m += s.stream_channels;
    m += s.stream_viewers;
    m += s.stream_flash / 2 + (s.stream_flash > 0 ? 1 : 0);
  }
  return m;
}

// All one-step reductions of `s`, in decreasing order of expected payoff:
// whole fault classes first, then single events, then magnitudes.
std::vector<ScenarioSpec> candidates(const ScenarioSpec& s) {
  std::vector<ScenarioSpec> out;
  const auto push = [&](ScenarioSpec c) {
    if (measure(c) < measure(s)) out.push_back(std::move(c));
  };

  if (!s.crashes.empty()) {
    ScenarioSpec c = s;
    c.crashes.clear();
    push(std::move(c));
  }
  if (!s.partitions.empty()) {
    ScenarioSpec c = s;
    c.partitions.clear();
    push(std::move(c));
  }
  if (s.churn) {
    ScenarioSpec c = s;
    c.churn = false;
    push(std::move(c));
  }
  if (!s.link.trivial()) {
    ScenarioSpec c = s;
    c.link = LinkFaultSpec{};
    push(std::move(c));
  }
  if (s.stream) {
    // Whole class first (no streaming overlay), then the flash crowd, then
    // viewer/channel magnitudes.
    ScenarioSpec c = s;
    c.stream = false;
    push(std::move(c));
    if (s.stream_flash > 0) {
      c = s;
      c.stream_flash = 0;
      push(std::move(c));
      c = s;
      c.stream_flash = s.stream_flash / 2;
      push(std::move(c));
    }
    if (s.stream_viewers > 1) {
      c = s;
      c.stream_viewers = s.stream_viewers / 2;
      push(std::move(c));
    }
    if (s.stream_channels > 1) {
      c = s;
      c.stream_channels = s.stream_channels / 2;
      push(std::move(c));
    }
  }
  for (std::size_t i = 0; i < s.crashes.size(); ++i) {
    ScenarioSpec c = s;
    c.crashes.erase(c.crashes.begin() + static_cast<std::ptrdiff_t>(i));
    push(std::move(c));
  }
  for (std::size_t i = 0; i < s.partitions.size(); ++i) {
    ScenarioSpec c = s;
    c.partitions.erase(c.partitions.begin() + static_cast<std::ptrdiff_t>(i));
    push(std::move(c));
  }
  if (s.lazy_peers > 0) {
    // Whole-class first (no lazy population at all), then magnitude.
    ScenarioSpec c = s;
    c.lazy_peers = 0;
    c.wave_peers = 0;
    push(std::move(c));
    c = s;
    c.lazy_peers = s.lazy_peers / 2;
    push(std::move(c));
  }
  if (s.wave_peers > 1) {
    ScenarioSpec c = s;
    c.wave_peers = s.wave_peers / 2;
    push(std::move(c));
  }
  if (s.hierarchical) {
    ScenarioSpec c = s;
    c.hierarchical = false;
    push(std::move(c));
  }
  if (s.task_cap > 1) {
    ScenarioSpec c = s;
    c.task_cap = std::max(1u, s.task_cap / 2);
    push(std::move(c));
  }
  if (s.peers > 2) {
    ScenarioSpec c = s;
    c.peers = std::max(2u, s.peers / 2);
    push(std::move(c));
  }
  if (s.het != 0) {
    ScenarioSpec c = s;
    c.het = 0;
    push(std::move(c));
  }
  if (s.arrival_rate > 0.5) {
    ScenarioSpec c = s;
    c.arrival_rate = 0.5;
    push(std::move(c));
  }
  if (s.workload > util::seconds(8)) {
    ScenarioSpec c = s;
    c.workload = std::max<util::SimDuration>(util::seconds(8), s.workload / 2);
    push(std::move(c));
  }
  if (s.drain > util::seconds(20)) {
    ScenarioSpec c = s;
    c.drain = std::max<util::SimDuration>(util::seconds(20), s.drain / 2);
    push(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& failing,
                    const FailPredicate& still_fails, std::size_t max_runs) {
  ShrinkResult result;
  result.minimal = failing;
  bool progressed = true;
  while (progressed && result.runs < max_runs) {
    progressed = false;
    for (auto& candidate : candidates(result.minimal)) {
      if (result.runs >= max_runs) break;
      ++result.runs;
      if (!still_fails(candidate)) continue;
      result.minimal = std::move(candidate);
      ++result.steps;
      progressed = true;
      break;  // restart from the (smaller) spec: big reductions first again
    }
  }
  return result;
}

FailPredicate make_same_invariant_predicate(std::string invariant) {
  return [invariant = std::move(invariant)](const ScenarioSpec& spec) {
    // Oracle failures need the replay harness; invariant failures only the
    // (much cheaper) single run.
    const bool is_oracle = invariant.rfind("oracle.", 0) == 0;
    const RunResult result =
        is_oracle ? run_spec(spec, true).result : run_scenario(spec);
    for (const auto& v : result.violations) {
      if (v.invariant == invariant) return true;
    }
    return false;
  };
}

}  // namespace p2prm::check

// Executes a ScenarioSpec under invariant checking.
//
// run_scenario builds the full stack a spec describes — System, synthesized
// population, Poisson workload, churn, fault plan — runs it with boundary
// invariant checks every couple of simulated seconds, drains, and finishes
// with the quiescent checks. fuzz_seed additionally replays clean runs
// against the ablation oracles: a determinism rerun and the cache-off /
// spans-on configurations, whose behavior digests must match bit-for-bit
// (the PR2/PR3 equivalence guarantees, now enforced over random scenarios).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace p2prm::core {
struct SystemConfig;
}  // namespace p2prm::core

namespace p2prm::check {

// Outcome summary of one scenario execution. `digest` is an FNV-1a hash of
// the run's observable behavior — task records, non-hop trace events and the
// final domain census — deliberately excluding hop/span events and transport
// counters so that ablation replays (cache off, spans on) must reproduce it.
struct RunResult {
  std::vector<Violation> violations;
  std::uint64_t digest = 0;
  util::SimTime end_time = 0;

  // Report counters (all from the ledger / network / census at the end).
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  std::size_t orphaned = 0;
  std::size_t missed = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::size_t domains = 0;
  std::size_t alive = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

// Runs `spec` against `checker` (which accumulates violations; pass a fresh
// one per run). Boundary checks fire every `boundary_period`. `inspect`, when
// set, runs on the final quiescent system before teardown — tests use it to
// probe end-state beyond what RunResult summarizes.
using InspectFn = std::function<void(core::System&)>;
// `tweak`, when set, runs on the assembled SystemConfig before the System is
// built — tests use it to flip engine knobs (e.g. enable_shard_rebalance)
// that a ScenarioSpec deliberately does not serialize.
using ConfigTweakFn = std::function<void(core::SystemConfig&)>;
// `threads` > 1 runs the scenario on the sharded parallel engine
// (SystemConfig::num_threads); the digest, trace, and metrics contract says
// the result is byte-identical to threads = 1.
RunResult run_scenario(const ScenarioSpec& spec, InvariantChecker& checker,
                       util::SimDuration boundary_period = util::seconds(2),
                       const InspectFn& inspect = {}, unsigned threads = 1,
                       const ConfigTweakFn& tweak = {});

// Convenience: fresh default checker.
RunResult run_scenario(const ScenarioSpec& spec);
RunResult run_scenario(const ScenarioSpec& spec, unsigned threads);

// One fuzz iteration: generate the spec for `seed`, run it, and — when the
// base run is clean and `oracles` is set — replay it under the equivalence
// oracles. Oracle mismatches surface as violations named "oracle.*".
struct SeedOutcome {
  ScenarioSpec spec;
  RunResult result;

  [[nodiscard]] bool ok() const { return result.ok(); }
};

// `parallel_threads` >= 2 adds a parallel-engine replay at that thread
// count to the oracle set ("oracle.parallel"); 0 or 1 skips it.
// `base_threads` sets the engine of the *base* run itself (CI's
// parallel-equivalence job runs the same sweep at 1 and 4 and cmp's the
// reports byte-for-byte).
SeedOutcome fuzz_seed(std::uint64_t seed, bool oracles = true,
                      unsigned parallel_threads = 2, unsigned base_threads = 1);

// Runs the spec (plus oracles when enabled) and reports the outcome — the
// shared path behind fuzz_seed and `p2prm_fuzz --repro`. `tweak` applies to
// the base run only (oracle replays keep the untweaked config) — the
// fuzzer's --transport=socket rides this hook, which is also why socket
// runs force oracles off: replay digests are timing-dependent there.
SeedOutcome run_spec(const ScenarioSpec& spec, bool oracles = true,
                     unsigned parallel_threads = 2, unsigned base_threads = 1,
                     const ConfigTweakFn& tweak = {});

}  // namespace p2prm::check

// Greedy scenario minimization (delta debugging).
//
// Given a failing ScenarioSpec, repeatedly tries strictly-smaller variants —
// drop fault events, disable churn, clear link faults, halve peers / task
// cap / durations — and keeps any variant that still fails, until no smaller
// variant fails or the run budget is exhausted. The result is the repro
// string CI uploads: a minimal scenario a developer replays with
// `p2prm_fuzz --repro=...`.
#pragma once

#include <cstddef>
#include <functional>

#include "check/scenario.hpp"

namespace p2prm::check {

// Returns true when `spec` still exhibits the failure being minimized.
// The canonical predicate re-runs the scenario and checks that the same
// invariant fires (see make_same_invariant_predicate in shrink.cpp /
// p2prm_fuzz).
using FailPredicate = std::function<bool(const ScenarioSpec&)>;

struct ShrinkResult {
  ScenarioSpec minimal;   // smallest still-failing spec found
  std::size_t runs = 0;   // predicate evaluations spent
  std::size_t steps = 0;  // accepted reductions
};

// `failing` must satisfy the predicate (it is returned unchanged otherwise).
// The predicate is invoked at most `max_runs` times.
ShrinkResult shrink(const ScenarioSpec& failing, const FailPredicate& still_fails,
                    std::size_t max_runs = 200);

// The standard predicate: re-run the candidate with default invariants (no
// oracle replays) and require a violation of `invariant` to reappear.
[[nodiscard]] FailPredicate make_same_invariant_predicate(std::string invariant);

}  // namespace p2prm::check

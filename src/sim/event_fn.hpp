// Small-buffer, move-only callable for simulator events.
//
// std::function<void()> heap-allocates as soon as a capture outgrows the
// implementation's small inline buffer (16 bytes on libstdc++), and the
// hottest schedule sites — message delivery, timer re-arm, processor
// completion — capture a few pointers plus ids, just over that line. A
// 48-byte inline buffer absorbs all of them, so steady-state scheduling
// performs zero callable allocations; bench_micro's event-queue benchmark
// reports the allocation count as a counter. Move-only, so events may also
// own non-copyable state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/arena.hpp"

namespace p2prm::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule call site.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = inline_vt<Fn>();
    } else {
      // Spill path: size-classed pool instead of the global heap. The
      // vtable is instantiated per Fn, so the destroy hook knows sizeof(Fn)
      // and can return the block to its exact size class.
      heap_ = util::pool_new<Fn>(std::forward<F>(f));
      vt_ = heap_vt<Fn>();
      heap_constructions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventFn(EventFn&& other) noexcept : vt_(other.vt_) {
    if (vt_) vt_->move(*this, other);
    other.vt_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    vt_ = other.vt_;
    if (vt_) vt_->move(*this, other);
    other.vt_ = nullptr;
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(*this); }
  explicit operator bool() const { return vt_ != nullptr; }

  // Process-wide count of callables that spilled to the heap (capture too
  // large or not nothrow-movable). Relaxed atomic: the parallel engine's
  // shard workers construct events concurrently; benches snapshot it around
  // a workload.
  [[nodiscard]] static std::uint64_t heap_constructions() {
    return heap_constructions_.load(std::memory_order_relaxed);
  }

 private:
  struct VTable {
    void (*invoke)(EventFn&);
    void (*move)(EventFn& dst, EventFn& src);
    void (*destroy)(EventFn&);
  };

  template <typename Fn>
  Fn* inline_target() {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }

  template <typename Fn>
  static const VTable* inline_vt() {
    static constexpr VTable vt{
        [](EventFn& self) { (*self.inline_target<Fn>())(); },
        [](EventFn& dst, EventFn& src) {
          ::new (static_cast<void*>(dst.buf_))
              Fn(std::move(*src.inline_target<Fn>()));
          src.inline_target<Fn>()->~Fn();
        },
        [](EventFn& self) { self.inline_target<Fn>()->~Fn(); }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vt() {
    static constexpr VTable vt{
        [](EventFn& self) { (*static_cast<Fn*>(self.heap_))(); },
        [](EventFn& dst, EventFn& src) {
          dst.heap_ = src.heap_;
          src.heap_ = nullptr;
        },
        [](EventFn& self) { util::pool_delete(static_cast<Fn*>(self.heap_)); }};
    return &vt;
  }

  void reset() {
    if (vt_ == nullptr) return;
    vt_->destroy(*this);
    vt_ = nullptr;
    heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;

  inline static std::atomic<std::uint64_t> heap_constructions_{0};
};

}  // namespace p2prm::sim

// Simulator-driven retry loop for unreliable request/ack exchanges.
//
// Usage: send the original message, then arm() a RetryOp with the message
// class's BackoffPolicy. If ack() is not called before the policy's delay
// elapses, `resend` fires (and the loop re-arms with the next, longer
// delay) until the policy is exhausted, at which point `on_exhausted` runs
// once. Handles are copyable shared references, like sim::Timer, so an
// entity can keep one per in-flight operation and ack from any callback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/metrics_registry.hpp"
#include "sim/simulator.hpp"
#include "util/backoff.hpp"

namespace p2prm::sim {

struct RetryStats {
  std::uint64_t retries = 0;     // resend invocations
  std::uint64_t exhausted = 0;   // operations that gave up
  std::uint64_t acked = 0;       // operations acked (any attempt)
};

// Writes <prefix>.retries/.exhausted/.acked counters under `labels`; the
// shared shape every RetryStats-bearing component publishes through.
void publish_retry_stats(const RetryStats& stats,
                         obs::MetricsRegistry& registry,
                         std::string_view prefix, obs::Labels labels = {});

class RetryOp {
 public:
  // `resend(attempt)` is invoked with the 1-based retry number (the original
  // send was attempt 0 and has already happened). `stats` may be nullptr.
  using ResendFn = std::function<void(int attempt)>;
  using ExhaustedFn = std::function<void()>;

  RetryOp() = default;

  // Arms (or re-arms, cancelling any previous schedule) the retry loop.
  // `rng` feeds jitter; pass nullptr for an unjittered schedule.
  void arm(Simulator& simulator, const util::BackoffPolicy& policy,
           util::Rng* rng, ResendFn resend, ExhaustedFn on_exhausted = {},
           RetryStats* stats = nullptr);

  // The awaited response arrived: stop retrying. Idempotent.
  void ack();
  // Abandon without counting an ack (operation superseded or cancelled).
  void cancel();

  [[nodiscard]] bool active() const;
  [[nodiscard]] int attempts() const;  // retries fired so far

 private:
  struct State {
    Simulator* sim = nullptr;
    util::BackoffPolicy policy;
    util::Rng* rng = nullptr;
    ResendFn resend;
    ExhaustedFn on_exhausted;
    RetryStats* stats = nullptr;
    EventId pending = 0;
    int attempt = 0;  // 0 = waiting for the original send's ack
    bool active = false;
  };
  static void schedule_next(const std::shared_ptr<State>& state);
  std::shared_ptr<State> state_;
};

}  // namespace p2prm::sim

#include "sim/retry.hpp"

namespace p2prm::sim {

void RetryOp::arm(Simulator& simulator, const util::BackoffPolicy& policy,
                  util::Rng* rng, ResendFn resend, ExhaustedFn on_exhausted,
                  RetryStats* stats) {
  cancel();
  if (policy.max_attempts <= 1) return;  // retries disabled for this class
  state_ = std::make_shared<State>();
  state_->sim = &simulator;
  state_->policy = policy;
  state_->rng = rng;
  state_->resend = std::move(resend);
  state_->on_exhausted = std::move(on_exhausted);
  state_->stats = stats;
  state_->active = true;
  schedule_next(state_);
}

void RetryOp::schedule_next(const std::shared_ptr<State>& state) {
  // attempt == N means N retries have fired; the next timeout either fires
  // retry N+1 or, once the policy's budget is spent, declares exhaustion —
  // one full delay *after* the final resend so it too can be acked.
  const auto delay = state->policy.delay(state->attempt, state->rng);
  std::weak_ptr<State> weak = state;
  state->pending = state->sim->schedule_after(delay, [weak] {
    const auto s = weak.lock();
    if (!s || !s->active) return;
    if (s->policy.exhausted(s->attempt)) {
      s->active = false;
      if (s->stats != nullptr) ++s->stats->exhausted;
      if (s->on_exhausted) s->on_exhausted();
      return;
    }
    ++s->attempt;
    if (s->stats != nullptr) ++s->stats->retries;
    s->resend(s->attempt);
    schedule_next(s);
  });
}

void RetryOp::ack() {
  if (!state_ || !state_->active) return;
  state_->active = false;
  state_->sim->cancel(state_->pending);
  if (state_->stats != nullptr) ++state_->stats->acked;
}

void RetryOp::cancel() {
  if (!state_ || !state_->active) return;
  state_->active = false;
  state_->sim->cancel(state_->pending);
}

bool RetryOp::active() const { return state_ && state_->active; }

int RetryOp::attempts() const { return state_ ? state_->attempt : 0; }

void publish_retry_stats(const RetryStats& stats,
                         obs::MetricsRegistry& registry,
                         std::string_view prefix, obs::Labels labels) {
  const std::string base(prefix);
  registry.counter(base + ".retries", labels).set(stats.retries);
  registry.counter(base + ".exhausted", labels).set(stats.exhausted);
  registry.counter(base + ".acked", labels).set(stats.acked);
}

}  // namespace p2prm::sim

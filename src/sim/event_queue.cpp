#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace p2prm::sim {

EventId EventQueue::push(util::SimTime when, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return id;
}

void EventQueue::push_with_id(util::SimTime when, EventId id, EventFn fn) {
  // Keep the "could this id still be pending" guard in cancel() sound.
  if (id >= next_id_) next_id_ = id + 1;
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
}

void EventQueue::push_bulk(std::vector<Popped>& batch) {
  if (batch.empty()) return;
  // make_heap is O(heap + batch); k sift-ups are O(k log heap). Heapify
  // when the batch is a meaningful fraction of the heap.
  const bool heapify = batch.size() >= heap_.size() / 8 + 8;
  heap_.reserve(heap_.size() + batch.size());
  for (auto& p : batch) {
    if (p.id >= next_id_) next_id_ = p.id + 1;
    heap_.push_back(Entry{p.when, p.id, std::move(p.fn)});
    if (!heapify) std::push_heap(heap_.begin(), heap_.end(), later);
  }
  if (heapify) std::make_heap(heap_.begin(), heap_.end(), later);
  live_ += batch.size();
  batch.clear();
}

bool EventQueue::cancel(EventId id) {
  if (id >= next_id_) return false;
  // Only mark if it could still be pending; popped events are gone from the
  // heap, and double-cancel must not corrupt the live count.
  if (cancelled_.insert(id)) {
    // We cannot cheaply tell whether `id` was already popped; callers only
    // cancel ids they know are pending (timer handles), so decrement here.
    if (live_ == 0) return false;
    --live_;
    if (auto_compact_ && tombstones() > live_ &&
        tombstones() >= kCompactMinTombstones) {
      compact();
    }
    return true;
  }
  return false;
}

std::size_t EventQueue::force_compact() {
  const std::size_t before = stats_.tombstones_compacted;
  compact();
  return static_cast<std::size_t>(stats_.tombstones_compacted - before);
}

void EventQueue::compact() {
  const auto keep =
      std::remove_if(heap_.begin(), heap_.end(), [&](const Entry& e) {
        return cancelled_.contains(e.id);
      });
  stats_.tombstones_compacted += static_cast<std::uint64_t>(heap_.end() - keep);
  heap_.erase(keep, heap_.end());
  // Every cancelled id that was still in the heap is now gone, and ids of
  // already-popped events can never re-enter (ids are unique), so the whole
  // set can be dropped.
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), later);
  ++stats_.compactions;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty()) {
    if (!cancelled_.erase(heap_.front().id)) return;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

util::SimTime EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? util::kTimeInfinity : heap_.front().when;
}

std::optional<EventQueue::Head> EventQueue::peek() {
  drop_cancelled_head();
  if (heap_.empty()) return std::nullopt;
  return Head{heap_.front().when, heap_.front().id};
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  return Popped{e.when, e.id, std::move(e.fn)};
}

void EventQueue::publish(obs::MetricsRegistry& registry,
                         obs::Labels labels) const {
  registry.counter("sim.event_queue.scheduled", labels).set(next_id_);
  registry.counter("sim.event_queue.compactions", labels)
      .set(stats_.compactions);
  registry.counter("sim.event_queue.tombstones_compacted", labels)
      .set(stats_.tombstones_compacted);
  registry.gauge("sim.event_queue.live", labels)
      .set(static_cast<double>(live_));
  registry.gauge("sim.event_queue.tombstones", labels)
      .set(static_cast<double>(tombstones()));
}

}  // namespace p2prm::sim

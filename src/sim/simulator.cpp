#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace p2prm::sim {

void Timer::cancel() {
  if (!state_ || !state_->active) return;
  state_->active = false;
  state_->sim->cancel(state_->pending);
}

bool Timer::active() const { return state_ && state_->active; }

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::enable_parallel(ParallelConfig config) {
  if (engine_) throw std::logic_error("enable_parallel: already enabled");
  if (queue_.total_scheduled() != 0 || executed_ != 0) {
    throw std::logic_error(
        "enable_parallel: must be called before any event is scheduled");
  }
  engine_ = std::make_unique<ParallelEngine>(config);
  engine_->bind(*this);
}

ShardId Simulator::route(util::PeerId affinity) const {
  if (router_ && affinity.valid()) {
    const ShardId s = router_(affinity);
    if (s < engine_->shards()) return s;
  }
  // No routing information: keep the event on the scheduling handler's
  // shard so purely local work never crosses a shard boundary.
  return engine_->current_shard();
}

EventId Simulator::schedule_at(util::SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::logic_error("schedule_at: cannot schedule into the past");
  }
  if (engine_) {
    return engine_->schedule_global(route(util::PeerId::invalid()), when,
                                    std::move(fn));
  }
  return queue_.push(when, std::move(fn));
}

EventId Simulator::schedule_after(util::SimDuration delay, EventFn fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(util::SimTime when, EventFn fn,
                               util::PeerId affinity) {
  if (when < now_) {
    throw std::logic_error("schedule_at: cannot schedule into the past");
  }
  if (engine_) {
    return engine_->schedule_global(route(affinity), when, std::move(fn));
  }
  return queue_.push(when, std::move(fn));
}

EventId Simulator::schedule_after(util::SimDuration delay, EventFn fn,
                                  util::PeerId affinity) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn), affinity);
}

Timer Simulator::every(util::SimDuration period, std::function<void()> fn) {
  return every(period, period, std::move(fn));
}

Timer Simulator::every(util::SimDuration initial_delay, util::SimDuration period,
                       std::function<void()> fn) {
  if (period <= 0) throw std::invalid_argument("Timer period must be positive");
  auto state = std::make_shared<Timer::State>();
  state->sim = this;
  state->active = true;
  // The tick re-arms itself before invoking the callback so that the
  // callback may itself cancel the timer. It holds only a weak reference to
  // its own closure — the pending event owns the strong one — so cancelled
  // timers release their closure instead of leaking a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, state, period, fn = std::move(fn), weak_tick]() {
    if (!state->active) return;
    auto self = weak_tick.lock();
    if (!self) return;
    state->pending = schedule_after(period, [self] { (*self)(); });
    fn();
  };
  state->pending = schedule_after(initial_delay, [tick] { (*tick)(); });
  return Timer(std::move(state));
}

std::uint64_t Simulator::run_until(util::SimTime until) {
  if (engine_) return engine_->run_until(until);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_) {
    const util::SimTime t = queue_.next_time();
    if (t == util::kTimeInfinity || t > until) break;
    auto ev = queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++n;
    ++executed_;
  }
  // Advance the clock to the horizon even if the queue drained early, so
  // back-to-back run_until calls observe monotonically increasing time.
  if (!stop_requested_ && until != util::kTimeInfinity && now_ < until) {
    now_ = until;
  }
  return n;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  if (engine_) return engine_->run_events(max_events);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stop_requested_) {
    const util::SimTime t = queue_.next_time();
    if (t == util::kTimeInfinity) break;
    auto ev = queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++n;
    ++executed_;
  }
  return n;
}

void Simulator::publish_queue(obs::MetricsRegistry& registry,
                              obs::Labels labels) const {
  if (engine_) {
    engine_->publish_queue_mirror(registry, std::move(labels));
  } else {
    queue_.publish(registry, std::move(labels));
  }
}

}  // namespace p2prm::sim

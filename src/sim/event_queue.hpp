// Deterministic pending-event set.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tie-break), which is what makes whole-system runs bit-reproducible.
// Cancellation is lazy: a cancelled event stays in the heap but is skipped
// on pop, keeping cancel() O(1). When tombstones outnumber live events the
// heap is compacted in one pass (timer-heavy workloads — retries, churn —
// otherwise carry a heap mostly full of corpses). Compaction rebuilds the
// heap array but not the pop order: the (time, id) comparator is a total
// order, so runs stay bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sim/event_fn.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace p2prm::sim {

using EventId = std::uint64_t;

struct EventQueueStats {
  std::uint64_t compactions = 0;
  std::uint64_t tombstones_compacted = 0;
};

class EventQueue {
 public:
  EventId push(util::SimTime when, EventFn fn);

  // Inserts an event under an externally assigned id (the parallel engine
  // allocates ids globally so per-shard queues share one tie-break order).
  // Ids must be unique across all pushes into this queue.
  void push_with_id(util::SimTime when, EventId id, EventFn fn);

  // True if the event was still pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Timestamp of the next live event; kTimeInfinity when empty.
  [[nodiscard]] util::SimTime next_time();

  // (time, id) key of the next live event, if any. Used by the parallel
  // engine's ordered merge to pick the globally minimal event across shards.
  struct Head {
    util::SimTime when;
    EventId id;
  };
  [[nodiscard]] std::optional<Head> peek();

  // Pops and returns the next live event. Precondition: !empty().
  struct Popped {
    util::SimTime when;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  // Bulk insert of externally-id'd events — the parallel engine's mailbox
  // merge. Large batches (relative to the heap) append and re-heapify in
  // one O(n + k) pass instead of k sift-ups; either path yields the same
  // heap *order* on pop because (time, id) is a total order. Consumes and
  // clears `batch`.
  void push_bulk(std::vector<Popped>& batch);

  [[nodiscard]] std::uint64_t total_scheduled() const { return next_id_; }

  // Cancelled-but-unpopped entries still occupying heap slots.
  [[nodiscard]] std::size_t tombstones() const {
    return heap_.size() > live_ ? heap_.size() - live_ : 0;
  }
  [[nodiscard]] const EventQueueStats& stats() const { return stats_; }
  // Writes sim.event_queue.* (compaction counters plus live/tombstone
  // occupancy gauges) under `labels`.
  void publish(obs::MetricsRegistry& registry, obs::Labels labels = {}) const;

  // Compact once tombstones exceed the live population and this floor (the
  // floor keeps small queues from churning on every other cancel).
  static constexpr std::size_t kCompactMinTombstones = 64;

  // The parallel engine disables the per-queue trigger and compacts all
  // shards together under a single global threshold, so that the published
  // compaction counters stay byte-identical to the sequential engine's.
  void set_auto_compact(bool enabled) { auto_compact_ = enabled; }
  // Removes every tombstone now; returns how many were dropped. Pop order
  // is unaffected (the (time, id) comparator is a total order).
  std::size_t force_compact();

 private:
  struct Entry {
    util::SimTime when;
    EventId id;
    EventFn fn;
  };
  // Min-heap ordering: earlier time first, then lower id.
  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }

  void drop_cancelled_head();
  void compact();

  std::vector<Entry> heap_;
  util::FlatSet<EventId> cancelled_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
  bool auto_compact_ = true;
  EventQueueStats stats_;
};

}  // namespace p2prm::sim

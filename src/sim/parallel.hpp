// Conservative parallel discrete-event engine (docs/PARALLELISM.md).
//
// Peers are partitioned by domain onto N shards, each owning its own
// EventQueue, and time advances in conservative windows bounded by the
// minimum cross-shard network latency (the lookahead): no event executed
// inside a window can schedule work for another shard earlier than the
// window's end, so shards never need to roll back. Cross-shard messages are
// staged into per-(src, dst) sequence-ordered mailboxes and merged at
// window barriers in fixed (src, dst, seq) order — the merge result is a
// pure function of the seed, never of worker completion order.
//
// Two execution strategies share the window machinery:
//
//  * OrderedCommit (what core::System runs under `num_threads > 1`):
//    handler invocation is serialized on the coordinating thread in exact
//    global (time, id) order — the same total order the sequential
//    EventQueue produces — while the worker pool carries the queue
//    maintenance (per-shard tombstone compaction fan-out). Full-system
//    handlers draw from shared order-sensitive state (link jitter/loss RNG,
//    the task ledger, trace buffers, global id factories), so any truly
//    concurrent invocation would reorder those draws and diverge; ordered
//    commit is what makes the parallel run byte-identical to the sequential
//    one, which the differential battery in tests/parallel_test.cpp proves
//    per seed.
//
//  * ShardConcurrent (engine-level): every worker drains its own shard's
//    window concurrently and may talk to other shards only via post().
//    Handlers must be shard-confined: they touch only state owned by their
//    shard. This is the strategy benchmarks (bench_e2_scalability
//    --threads) and the TSan stress suite run, and the one that yields
//    wall-clock speedup today.
//
// The engine mirrors the sequential EventQueue's published counters
// (scheduled / compactions / tombstones) arithmetically — compaction is
// triggered on global occupancy with the exact sequential rule — so a
// metrics snapshot of a parallel run is byte-identical to the sequential
// snapshot, not merely equivalent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace p2prm::sim {

using ShardId = std::uint32_t;

enum class ParallelMode {
  OrderedCommit,    // sequential total order; machinery runs on the pool
  ShardConcurrent,  // shard-confined handlers run concurrently per window
};

struct ParallelConfig {
  // Worker threads; one shard per worker.
  unsigned threads = 2;
  // Conservative window width: a lower bound on every cross-shard event
  // delay. core::System derives it from the topology's base latency floor.
  util::SimDuration lookahead = util::milliseconds(1);
  ParallelMode mode = ParallelMode::OrderedCommit;
};

// Deterministic per-shard counters (published as sim.parallel.* with a
// {"shard": N} label; see docs/PARALLELISM.md).
struct ShardCounters {
  std::uint64_t executed = 0;   // events run on (OrderedCommit: for) this shard
  std::uint64_t scheduled = 0;  // events enqueued into this shard's queue
  std::uint64_t posts_out = 0;  // cross-shard messages staged from this shard
  std::uint64_t posts_in = 0;   // cross-shard messages merged into this shard
  std::uint64_t compactions = 0;  // force-compact passes run on this shard
};

struct ParallelEngineStats {
  std::uint64_t windows = 0;   // conservative windows opened
  std::uint64_t barriers = 0;  // physical worker-pool rendezvous
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t merged_messages = 0;  // delivered through mailbox merges
  // post()s whose delivery time fell inside the posting window — a
  // violation of the conservative lookahead contract (delivered anyway,
  // but counted; the sim_test suite asserts this stays zero for well-formed
  // workloads).
  std::uint64_t lookahead_violations = 0;
  // Global compaction passes (the sequential-rule trigger) and tombstones
  // removed by them; mirrors EventQueueStats of a sequential run.
  std::uint64_t compactions = 0;
  std::uint64_t tombstones_compacted = 0;
};

// Handle for shard-confined cancellation in ShardConcurrent mode.
struct ShardEvent {
  ShardId shard = 0;
  EventId id = 0;
};

class Simulator;

class ParallelEngine {
 public:
  explicit ParallelEngine(ParallelConfig config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] const ParallelConfig& config() const { return config_; }
  [[nodiscard]] ShardId shards() const {
    return static_cast<ShardId>(queues_.size());
  }

  // --- OrderedCommit API (driven through Simulator) -------------------------
  // Binds the Simulator whose clock/stop-flag this engine drives.
  void bind(Simulator& sim) { sim_ = &sim; }
  // Schedules under a globally allocated id; `shard` only routes the event
  // to a queue (it can never change execution order in this mode).
  EventId schedule_global(ShardId shard, util::SimTime when, EventFn fn);
  bool cancel_global(EventId id);
  std::uint64_t run_until(util::SimTime until);
  std::uint64_t run_events(std::uint64_t max_events);
  [[nodiscard]] bool idle();
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_id_; }
  // Shard of the event currently executing (0 between events) — the default
  // affinity for schedule calls with no explicit peer.
  [[nodiscard]] ShardId current_shard() const { return current_shard_; }

  // --- ShardConcurrent API (standalone use: tests, benches) ----------------
  // Shard-confined scheduling: call only from `shard`'s own handlers, or
  // from outside run_window()/run_windows_until().
  ShardEvent schedule(ShardId shard, util::SimTime when, EventFn fn);
  bool cancel(ShardEvent handle);
  // Stages a cross-shard event; delivered via the next barrier merge. The
  // conservative contract requires `when` to be at or past the current
  // window's end (violations are counted, not dropped).
  void post(ShardId from, ShardId to, util::SimTime when, EventFn fn);
  // Clock of one shard as of its last executed event.
  [[nodiscard]] util::SimTime shard_now(ShardId shard) const {
    return shard_now_[shard];
  }
  // Runs conservative windows until every queue is past `until` (events at
  // exactly `until` still run). Returns events executed.
  std::uint64_t run_windows_until(util::SimTime until);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const ParallelEngineStats& stats() const { return stats_; }
  [[nodiscard]] const ShardCounters& shard_counters(ShardId shard) const {
    return counters_[shard];
  }
  // Total pending events / tombstones, mirroring the sequential queue's
  // accounting (see mirror_* members).
  [[nodiscard]] std::size_t live() const { return mirror_live_; }
  [[nodiscard]] std::size_t tombstones() const { return mirror_tombstones_; }
  // Physical occupancy summed over shard queues (the check:: invariant
  // compares this against the mirrors).
  [[nodiscard]] std::size_t physical_live() const;
  [[nodiscard]] std::size_t physical_tombstones() const;
  [[nodiscard]] const EventQueue& shard_queue(ShardId shard) const {
    return queues_[shard];
  }

  // sim.event_queue.* series with the exact values a sequential run of the
  // same seed publishes (Simulator::publish_queue routes here).
  void publish_queue_mirror(obs::MetricsRegistry& registry,
                            obs::Labels labels = {}) const;
  // sim.parallel.* engine counters plus per-shard series. Deliberately NOT
  // part of metrics::publish_all: the v1/v2 snapshots must stay
  // byte-identical between engines.
  void publish(obs::MetricsRegistry& registry, obs::Labels labels = {}) const;

 private:
  struct Staged {
    std::uint64_t seq;
    util::SimTime when;
    EventFn fn;
  };
  // One mailbox per (src, dst) pair; only shard `src`'s worker appends, and
  // only the coordinator drains (after a barrier), so no slot is ever
  // touched by two threads without a happens-before edge.
  struct Mailbox {
    std::vector<Staged> staged;
    std::uint64_t next_seq = 0;
  };

  enum class PoolTask { None, RunWindow, Compact, Exit };

  void start_workers();
  void worker_main(ShardId shard);
  // Runs `task` on every shard via the worker pool and waits for all.
  void dispatch(PoolTask task);

  // Mirrors the sequential queue's lazy head-pruning: before executing the
  // global-min live event `head`, every cancelled-but-unpopped entry that
  // sorts before it would have surfaced at the sequential heap's head and
  // been dropped there.
  void mirror_prune_before(util::SimTime when, EventId id);
  // Applies the sequential compaction rule to the global occupancy; when it
  // fires, fans the physical per-shard compaction out to the worker pool.
  void maybe_global_compact();

  void merge_mailboxes();
  std::uint64_t ordered_run(util::SimTime until, std::uint64_t max_events);

  ParallelConfig config_;
  Simulator* sim_ = nullptr;

  std::vector<EventQueue> queues_;
  std::vector<ShardCounters> counters_;
  std::vector<util::SimTime> shard_now_;
  std::vector<Mailbox> mailboxes_;  // [src * shards + dst]

  // OrderedCommit id plumbing: global id counter, id -> shard routing, and
  // the (when, id) min-heap of still-pending cancelled entries that backs
  // the sequential-counter mirror.
  EventId next_id_ = 0;
  std::unordered_map<EventId, ShardId> owner_;
  struct CancelKey {
    util::SimTime when;
    EventId id;
    bool operator>(const CancelKey& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };
  std::priority_queue<CancelKey, std::vector<CancelKey>, std::greater<>>
      cancelled_keys_;
  std::unordered_map<EventId, util::SimTime> pending_when_;
  std::size_t mirror_live_ = 0;
  std::size_t mirror_tombstones_ = 0;

  ShardId current_shard_ = 0;
  util::SimTime window_end_ = 0;
  ParallelEngineStats stats_;

  // Worker pool: one thread per shard, generation-counted barrier.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::uint64_t pool_gen_ = 0;
  unsigned pool_pending_ = 0;
  PoolTask pool_task_ = PoolTask::None;
  util::SimTime pool_window_end_ = 0;
  std::uint64_t concurrent_executed_ = 0;  // guarded by pool_mu_ during merge
};

}  // namespace p2prm::sim

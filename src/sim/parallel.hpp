// Conservative parallel discrete-event engine (docs/PARALLELISM.md).
//
// Peers are partitioned by domain onto N shards, each owning its own
// EventQueue, and time advances in conservative windows: no event executed
// inside a window can schedule work for another shard earlier than that
// shard's window end, so shards never need to roll back. Windows are
// *per-shard* and *per-pair*: shard w may run up to
//
//   end[w] = min over src of (next_time(src) + D(src, w))
//
// where D is the min-plus shortest-path closure of the pair lookahead
// matrix L — D(src, w) bounds from below the total delay of any message
// chain from src to w, across any number of relay hops and any number of
// window barriers, and D(w, w) is the shortest feedback cycle through w
// (the earliest a shard's own output can come back at it via other
// shards). The src == w term is what makes the bound sound when every
// other queue is empty: an empty shard cannot originate anything, but it
// can relay, and the closure prices exactly that path. Without it a busy
// shard could drain far ahead, post, and receive the >= 2-hop reply below
// its own clock (no rollback machinery exists to recover from that).
//
// L(src, w) itself is a lower bound on the delay of any *direct* src -> w
// message. By default every L is the global minimum cross-shard latency
// (ParallelConfig::lookahead); set_pair_lookahead() installs a full
// (src, dst) matrix derived from the topology (core::System computes it
// from per-shard coordinate bounding boxes), which widens windows wherever
// shard pairs are far apart — distant shards constrain each other weakly.
//
// Cross-shard messages are staged into per-(src, dst) sequence-ordered
// mailboxes. At the window barrier each *destination* worker drains its own
// mailbox column in fixed (src, seq) order and bulk-appends into its queue
// (EventQueue::push_bulk), so the flush is parallel and batched while the
// merge result stays a pure function of the seed, never of worker
// completion order. The coordinator overlaps that flush with its own
// commit-stage work — stats folding, the load EWMA, the rebalance hook,
// next-window planning — via a split dispatch (dispatch_async/wait_pool).
//
// Load balance: the engine keeps an EWMA of events-executed-per-window per
// shard and, every ParallelConfig::rebalance_interval_windows windows,
// hands it to a rebalance hook at a barrier. The hook (core::System)
// migrates hot domains to cool shards by changing the routing table and
// refreshes the lookahead matrix; it schedules nothing. Under
// OrderedCommit, commit order is the global (time, id) order — independent
// of which queue an event sits in — so rebalancing is byte-neutral there
// by construction (tests/parallel_test.cpp proves it differentially).
//
// Two execution strategies share the window machinery:
//
//  * OrderedCommit (what core::System runs under `num_threads > 1`):
//    handler invocation is serialized on the coordinating thread in exact
//    global (time, id) order — the same total order the sequential
//    EventQueue produces — while the worker pool carries the queue
//    maintenance (per-shard tombstone compaction fan-out). Full-system
//    handlers draw from shared order-sensitive state (link jitter/loss RNG,
//    the task ledger, trace buffers, global id factories), so any truly
//    concurrent invocation would reorder those draws and diverge; ordered
//    commit is what makes the parallel run byte-identical to the sequential
//    one, which the differential battery in tests/parallel_test.cpp proves
//    per seed.
//
//  * ShardConcurrent (engine-level): every worker drains its own shard's
//    window concurrently and may talk to other shards only via post().
//    Handlers must be shard-confined: they touch only state owned by their
//    shard. This is the strategy benchmarks (bench_e2_scalability
//    --threads) and the TSan stress suite run, and the one that yields
//    wall-clock speedup today.
//
// The engine mirrors the sequential EventQueue's published counters
// (scheduled / compactions / tombstones) arithmetically — compaction is
// triggered on global occupancy with the exact sequential rule — so a
// metrics snapshot of a parallel run is byte-identical to the sequential
// snapshot, not merely equivalent.
//
// Per-stage wall-clock timers (execute, mailbox flush, barrier wait, commit
// drain, window planning) are sampled with steady_clock and published only
// through ParallelEngine::publish (sim.parallel.stage.*), which is
// deliberately outside metrics::publish_all — they are nondeterministic and
// must never reach a compared snapshot or an invariant.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sim/event_queue.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace p2prm::sim {

using ShardId = std::uint32_t;

enum class ParallelMode {
  OrderedCommit,    // sequential total order; machinery runs on the pool
  ShardConcurrent,  // shard-confined handlers run concurrently per window
};

struct ParallelConfig {
  // Worker threads; one shard per worker.
  unsigned threads = 2;
  // Conservative window width: a lower bound on every cross-shard event
  // delay. core::System derives it from the topology's base latency floor.
  // set_pair_lookahead() refines it per (src, dst) pair.
  util::SimDuration lookahead = util::milliseconds(1);
  ParallelMode mode = ParallelMode::OrderedCommit;
  // Invoke the rebalance hook every this many windows (0 = never). The
  // hook itself is installed with set_rebalance_hook().
  std::uint64_t rebalance_interval_windows = 0;
  // Smoothing for the per-shard events-per-window EWMA feeding the hook.
  double load_ewma_alpha = 0.25;
};

// Deterministic per-shard counters (published as sim.parallel.* with a
// {"shard": N} label; see docs/PARALLELISM.md). Cache-line aligned: in
// ShardConcurrent mode each shard's worker increments its own entry inside
// the window loop.
struct alignas(64) ShardCounters {
  std::uint64_t executed = 0;   // events run on (OrderedCommit: for) this shard
  std::uint64_t scheduled = 0;  // events enqueued into this shard's queue
  std::uint64_t posts_out = 0;  // cross-shard messages staged from this shard
  std::uint64_t posts_in = 0;   // cross-shard messages merged into this shard
  std::uint64_t compactions = 0;  // force-compact passes run on this shard
  // post()s merged into this shard whose delivery time fell inside the
  // shard's window — violations of the conservative contract (delivered
  // anyway, but counted; folded into ParallelEngineStats at each barrier).
  std::uint64_t lookahead_violations = 0;
  // post()s merged into this shard with a delivery time below the shard's
  // own clock — events delivered into the shard's executed past. This is
  // the direct out-of-order check (a lookahead violation measured against
  // the window end may still be causally harmless; this one never is).
  std::uint64_t causality_violations = 0;
};

// Wall-clock nanoseconds per pipeline stage, one row per shard worker plus
// a coordinator row inside ParallelEngineStats. Nondeterministic by nature;
// exported only via publish() for bottleneck visibility.
struct alignas(64) ShardStageTimers {
  std::uint64_t execute_ns = 0;       // window execution (ShardConcurrent)
  std::uint64_t mailbox_flush_ns = 0; // inbound mailbox merge
  std::uint64_t barrier_wait_ns = 0;  // idle at the dispatch rendezvous
};

struct ParallelEngineStats {
  std::uint64_t windows = 0;   // conservative windows opened
  std::uint64_t barriers = 0;  // physical worker-pool rendezvous
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t merged_messages = 0;  // delivered through mailbox merges
  // post()s whose delivery time fell inside the destination's window — a
  // violation of the conservative lookahead contract (delivered anyway,
  // but counted; the sim_test suite asserts this stays zero for well-formed
  // workloads).
  std::uint64_t lookahead_violations = 0;
  // post()s delivered below the destination shard's clock — an event
  // merged into a shard's executed past. Zero for every workload that
  // honors the post() contract; the parallel.counters invariant asserts it.
  std::uint64_t causality_violations = 0;
  // Global compaction passes (the sequential-rule trigger) and tombstones
  // removed by them; mirrors EventQueueStats of a sequential run.
  std::uint64_t compactions = 0;
  std::uint64_t tombstones_compacted = 0;
  // Times the rebalance hook ran.
  std::uint64_t rebalances = 0;
  // Coordinator-side stage timers (wall-clock ns; see header comment).
  std::uint64_t commit_drain_ns = 0;  // OrderedCommit ordered_run loop
  std::uint64_t window_plan_ns = 0;   // ShardConcurrent window planning +
                                      // stats fold overlapped with flushes
};

// Handle for shard-confined cancellation in ShardConcurrent mode.
struct ShardEvent {
  ShardId shard = 0;
  EventId id = 0;
};

class Simulator;

class ParallelEngine {
 public:
  explicit ParallelEngine(ParallelConfig config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] const ParallelConfig& config() const { return config_; }
  [[nodiscard]] ShardId shards() const {
    return static_cast<ShardId>(queues_.size());
  }

  // --- adaptive lookahead / rebalancing ------------------------------------
  // Installs a shards()^2 row-major matrix of per-(src, dst) delay lower
  // bounds; entry [src * shards() + dst] bounds any src -> dst message
  // delay from below. Diagonal entries are ignored (a shard constrains
  // itself only through round trips via other shards, priced by the
  // closure's cycle terms). Every off-diagonal entry must be >= 1 tick.
  // Safe to call between windows (the rebalance hook does).
  void set_pair_lookahead(std::vector<util::SimDuration> matrix);
  [[nodiscard]] util::SimDuration pair_lookahead(ShardId src,
                                                 ShardId dst) const {
    return pair_la_[static_cast<std::size_t>(src) * shards() + dst];
  }
  // Min-plus shortest-path closure of the pair matrix: the least total
  // delay of any >= 1-hop message chain src -> dst (src == dst: the
  // shortest feedback cycle). kTimeInfinity when no chain exists (single
  // shard). This is the bound plan_windows actually uses.
  [[nodiscard]] util::SimDuration pair_closure(ShardId src,
                                               ShardId dst) const {
    return pair_closure_[static_cast<std::size_t>(src) * shards() + dst];
  }

  // Hook invoked at a barrier every config.rebalance_interval_windows
  // windows with the per-shard events-per-window EWMA. The hook may adjust
  // routing (outside the engine) and call set_pair_lookahead; it must not
  // schedule, cancel, or post.
  void set_rebalance_hook(std::function<void(const std::vector<double>&)> h) {
    rebalance_hook_ = std::move(h);
  }
  [[nodiscard]] const std::vector<double>& shard_load_ewma() const {
    return load_ewma_;
  }

  // --- OrderedCommit API (driven through Simulator) -------------------------
  // Binds the Simulator whose clock/stop-flag this engine drives.
  void bind(Simulator& sim) { sim_ = &sim; }
  // Schedules under a globally allocated id; `shard` only routes the event
  // to a queue (it can never change execution order in this mode).
  EventId schedule_global(ShardId shard, util::SimTime when, EventFn fn);
  bool cancel_global(EventId id);
  std::uint64_t run_until(util::SimTime until);
  std::uint64_t run_events(std::uint64_t max_events);
  [[nodiscard]] bool idle();
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_id_; }
  // Shard of the event currently executing (0 between events) — the default
  // affinity for schedule calls with no explicit peer.
  [[nodiscard]] ShardId current_shard() const { return current_shard_; }

  // --- ShardConcurrent API (standalone use: tests, benches) ----------------
  // Shard-confined scheduling: call only from `shard`'s own handlers, or
  // from outside run_window()/run_windows_until().
  ShardEvent schedule(ShardId shard, util::SimTime when, EventFn fn);
  bool cancel(ShardEvent handle);
  // Stages a cross-shard event; delivered via the next barrier merge. The
  // conservative contract requires `when` to be at or past the
  // destination's window end (violations are counted, not dropped).
  void post(ShardId from, ShardId to, util::SimTime when, EventFn fn);
  // Clock of one shard as of its last executed event.
  [[nodiscard]] util::SimTime shard_now(ShardId shard) const {
    return shard_now_[shard];
  }
  // Runs conservative windows until every queue is past `until` (events at
  // exactly `until` still run). Returns events executed.
  std::uint64_t run_windows_until(util::SimTime until);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const ParallelEngineStats& stats() const { return stats_; }
  [[nodiscard]] const ShardCounters& shard_counters(ShardId shard) const {
    return counters_[shard];
  }
  [[nodiscard]] const ShardStageTimers& shard_stage_timers(
      ShardId shard) const {
    return timers_[shard];
  }
  // Total pending events / tombstones, mirroring the sequential queue's
  // accounting (see mirror_* members).
  [[nodiscard]] std::size_t live() const { return mirror_live_; }
  [[nodiscard]] std::size_t tombstones() const { return mirror_tombstones_; }
  // Physical occupancy summed over shard queues (the check:: invariant
  // compares this against the mirrors).
  [[nodiscard]] std::size_t physical_live() const;
  [[nodiscard]] std::size_t physical_tombstones() const;
  [[nodiscard]] const EventQueue& shard_queue(ShardId shard) const {
    return queues_[shard];
  }

  // sim.event_queue.* series with the exact values a sequential run of the
  // same seed publishes (Simulator::publish_queue routes here).
  void publish_queue_mirror(obs::MetricsRegistry& registry,
                            obs::Labels labels = {}) const;
  // sim.parallel.* engine counters, per-shard series, and the stage timing
  // breakdown. Deliberately NOT part of metrics::publish_all: the v1/v2
  // snapshots must stay byte-identical between engines, and the stage
  // timers are wall-clock.
  void publish(obs::MetricsRegistry& registry, obs::Labels labels = {}) const;

 private:
  struct Staged {
    std::uint64_t seq;
    util::SimTime when;
    EventFn fn;
  };
  // One mailbox per (src, dst) pair; only shard `src`'s worker appends
  // (during its window), and only shard `dst`'s worker drains (during the
  // flush phase) — the two phases are separated by a barrier, so no slot is
  // ever touched by two threads without a happens-before edge.
  struct Mailbox {
    std::vector<Staged> staged;
    std::uint64_t next_seq = 0;
  };

  enum class PoolTask { None, RunWindow, MergeInbox, Compact, Exit };

  void start_workers();
  void worker_main(ShardId shard);
  // Runs `task` on every shard via the worker pool. dispatch() waits;
  // dispatch_async() returns immediately and the coordinator overlaps its
  // own work until wait_pool().
  void dispatch(PoolTask task);
  void dispatch_async(PoolTask task);
  void wait_pool();

  // Drains the inbound mailbox column of `dst` in (src, seq) order into its
  // queue (bulk append). Runs on dst's worker under PoolTask::MergeInbox.
  void merge_inbox(ShardId dst);

  // Computes per-shard window ends from shard head times and the closure
  // of the pair matrix; returns the global minimum head time (kTimeInfinity
  // when all queues are empty). `next` must hold shards() entries.
  util::SimTime plan_windows(const std::vector<util::SimTime>& next,
                             util::SimTime until);

  // Recomputes pair_closure_ from pair_la_ (Floyd-Warshall over the
  // off-diagonal edges; diagonal entries of pair_la_ are never edges, so
  // the closure diagonal is the shortest cycle through other shards).
  // Called whenever pair_la_ changes, on the coordinator between windows.
  void rebuild_closure();

  // Folds per-window executed deltas into the EWMA and fires the rebalance
  // hook on its interval. Called once per window by both strategies.
  void note_window();

  // Mirrors the sequential queue's lazy head-pruning: before executing the
  // global-min live event `head`, every cancelled-but-unpopped entry that
  // sorts before it would have surfaced at the sequential heap's head and
  // been dropped there.
  void mirror_prune_before(util::SimTime when, EventId id);
  // Applies the sequential compaction rule to the global occupancy; when it
  // fires, fans the physical per-shard compaction out to the worker pool.
  void maybe_global_compact();

  std::uint64_t ordered_run(util::SimTime until, std::uint64_t max_events);

  ParallelConfig config_;
  Simulator* sim_ = nullptr;

  std::vector<EventQueue> queues_;
  std::vector<ShardCounters> counters_;
  std::vector<ShardStageTimers> timers_;
  std::vector<util::SimTime> shard_now_;
  std::vector<Mailbox> mailboxes_;  // [src * shards + dst]
  std::vector<util::SimDuration> pair_la_;       // [src * shards + dst]
  std::vector<util::SimDuration> pair_closure_;  // min-plus closure of pair_la_
  std::vector<util::SimTime> window_ends_;    // per-shard, set by coordinator
  std::vector<util::SimTime> head_after_merge_;  // published by dst workers
  std::vector<std::vector<EventQueue::Popped>> merge_scratch_;  // per dst

  // Rebalancing state (coordinator-only).
  std::function<void(const std::vector<double>&)> rebalance_hook_;
  std::vector<double> load_ewma_;
  std::vector<std::uint64_t> prev_executed_;
  std::uint64_t windows_since_rebalance_ = 0;

  // OrderedCommit id plumbing: global id counter, id -> (shard, when)
  // routing, and the (when, id) min-heap of still-pending cancelled entries
  // that backs the sequential-counter mirror.
  EventId next_id_ = 0;
  struct Pending {
    ShardId shard = 0;
    util::SimTime when = 0;
  };
  util::FlatMap<EventId, Pending> pending_;
  struct CancelKey {
    util::SimTime when;
    EventId id;
    bool operator>(const CancelKey& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };
  std::priority_queue<CancelKey, std::vector<CancelKey>, std::greater<>>
      cancelled_keys_;
  std::size_t mirror_live_ = 0;
  std::size_t mirror_tombstones_ = 0;

  ShardId current_shard_ = 0;
  util::SimTime window_end_ = 0;
  ParallelEngineStats stats_;

  // Worker pool: one thread per shard, generation-counted barrier.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::uint64_t pool_gen_ = 0;
  unsigned pool_pending_ = 0;
  PoolTask pool_task_ = PoolTask::None;
  bool pool_busy_ = false;  // a dispatch_async has not been waited yet
};

}  // namespace p2prm::sim

// The discrete-event simulator every subsystem runs on.
//
// This is the substitute for a wide-area deployment (see DESIGN.md §2):
// peers, resource managers and the network are event-driven entities whose
// only notion of time is Simulator::now(). A repeating Timer models the
// paper's periodic activities (profiler reports, backup-RM sync, gossip
// rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace p2prm::sim {

class Simulator;

// Handle to a repeating timer. Cancelling is idempotent; destroying the
// handle does NOT cancel (entities often fire-and-forget periodic work that
// must outlive local scopes).
class Timer {
 public:
  Timer() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Simulator;
  struct State {
    bool active = false;
    EventId pending = 0;
    Simulator* sim = nullptr;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] double now_seconds() const { return util::to_seconds(now_); }

  // Root RNG for the run; subsystems should fork() their own streams.
  [[nodiscard]] util::Rng& rng() { return rng_; }

  EventId schedule_at(util::SimTime when, EventFn fn);
  EventId schedule_after(util::SimDuration delay, EventFn fn);
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Repeating timer: first fires after `period` (or `initial_delay` if
  // given), then every `period` until cancelled.
  Timer every(util::SimDuration period, std::function<void()> fn);
  Timer every(util::SimDuration initial_delay, util::SimDuration period,
              std::function<void()> fn);

  // Run until the queue drains or `until` is passed (events at exactly
  // `until` still run). Returns the number of events executed.
  std::uint64_t run_until(util::SimTime until = util::kTimeInfinity);
  // Execute at most `max_events` events.
  std::uint64_t run_events(std::uint64_t max_events);

  // Request an orderly stop from inside an event handler.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool idle() { return queue_.next_time() == util::kTimeInfinity; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return queue_.total_scheduled();
  }
  // Read-only view of the pending-event set (tombstone/compaction stats).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  util::SimTime now_ = util::kTimeZero;
  EventQueue queue_;
  util::Rng rng_;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace p2prm::sim

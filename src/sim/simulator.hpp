// The discrete-event simulator every subsystem runs on.
//
// This is the substitute for a wide-area deployment (see DESIGN.md §2):
// peers, resource managers and the network are event-driven entities whose
// only notion of time is Simulator::now(). A repeating Timer models the
// paper's periodic activities (profiler reports, backup-RM sync, gossip
// rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace p2prm::sim {

class Simulator;

// Handle to a repeating timer. Cancelling is idempotent; destroying the
// handle does NOT cancel (entities often fire-and-forget periodic work that
// must outlive local scopes).
class Timer {
 public:
  Timer() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Simulator;
  struct State {
    bool active = false;
    EventId pending = 0;
    Simulator* sim = nullptr;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] double now_seconds() const { return util::to_seconds(now_); }

  // Root RNG for the run; subsystems should fork() their own streams.
  [[nodiscard]] util::Rng& rng() { return rng_; }

  EventId schedule_at(util::SimTime when, EventFn fn);
  EventId schedule_after(util::SimDuration delay, EventFn fn);
  // Affinity-routed variants: under the parallel engine the event lands on
  // `affinity`'s shard (per the installed router); sequentially they are
  // identical to the plain forms. Events scheduled without an affinity stay
  // on the shard of the handler that scheduled them.
  EventId schedule_at(util::SimTime when, EventFn fn, util::PeerId affinity);
  EventId schedule_after(util::SimDuration delay, EventFn fn,
                         util::PeerId affinity);
  bool cancel(EventId id) {
    return engine_ ? engine_->cancel_global(id) : queue_.cancel(id);
  }

  // Switches this simulator onto the sharded parallel engine
  // (docs/PARALLELISM.md). Must be called before anything is scheduled; the
  // sequential path is untouched when this is never called.
  void enable_parallel(ParallelConfig config);
  // Maps a peer to its shard (core::System installs domain-based routing).
  // Unrouted or invalid peers fall back to shard 0.
  void set_shard_router(std::function<ShardId(util::PeerId)> router) {
    router_ = std::move(router);
  }
  [[nodiscard]] bool parallel() const { return engine_ != nullptr; }
  [[nodiscard]] ParallelEngine* parallel_engine() { return engine_.get(); }
  [[nodiscard]] const ParallelEngine* parallel_engine() const {
    return engine_.get();
  }

  // Repeating timer: first fires after `period` (or `initial_delay` if
  // given), then every `period` until cancelled.
  Timer every(util::SimDuration period, std::function<void()> fn);
  Timer every(util::SimDuration initial_delay, util::SimDuration period,
              std::function<void()> fn);

  // Run until the queue drains or `until` is passed (events at exactly
  // `until` still run). Returns the number of events executed.
  std::uint64_t run_until(util::SimTime until = util::kTimeInfinity);
  // Execute at most `max_events` events.
  std::uint64_t run_events(std::uint64_t max_events);

  // Request an orderly stop from inside an event handler.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool idle() {
    return engine_ ? engine_->idle()
                   : queue_.next_time() == util::kTimeInfinity;
  }
  // Time of the earliest pending event (kTimeInfinity when idle). The
  // realtime driver uses it to size poll() timeouts; sequential engine
  // only (the socket transport never runs parallel).
  [[nodiscard]] util::SimTime next_event_time() {
    return engine_ ? util::kTimeInfinity : queue_.next_time();
  }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return engine_ ? engine_->total_scheduled() : queue_.total_scheduled();
  }
  // Read-only view of the pending-event set (tombstone/compaction stats).
  // Meaningful for the sequential engine only; parallel runs publish
  // through publish_queue() below.
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  // sim.event_queue.* series for whichever engine is active. A parallel run
  // emits the byte-identical values its sequential twin would.
  void publish_queue(obs::MetricsRegistry& registry,
                     obs::Labels labels = {}) const;

 private:
  friend class ParallelEngine;  // drives now_/executed_/stop_requested_

  ShardId route(util::PeerId affinity) const;

  util::SimTime now_ = util::kTimeZero;
  EventQueue queue_;
  util::Rng rng_;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
  std::unique_ptr<ParallelEngine> engine_;
  std::function<ShardId(util::PeerId)> router_;
};

}  // namespace p2prm::sim

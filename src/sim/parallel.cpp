#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"

namespace p2prm::sim {

ParallelEngine::ParallelEngine(ParallelConfig config) : config_(config) {
  if (config_.threads < 1) {
    throw std::invalid_argument("ParallelEngine: need at least one thread");
  }
  if (config_.lookahead < 1) {
    throw std::invalid_argument("ParallelEngine: lookahead must be positive");
  }
  const auto n = static_cast<std::size_t>(config_.threads);
  queues_ = std::vector<EventQueue>(n);
  counters_.resize(n);
  shard_now_.assign(n, util::kTimeZero);
  mailboxes_ = std::vector<Mailbox>(n * n);
  // Per-shard auto-compaction would fire on local occupancy, which depends
  // on the shard partition; the global trigger below fires on the same
  // occupancy a sequential run sees.
  for (auto& q : queues_) q.set_auto_compact(false);
  start_workers();
}

ParallelEngine::~ParallelEngine() {
  dispatch(PoolTask::Exit);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

// --- worker pool -----------------------------------------------------------

void ParallelEngine::start_workers() {
  workers_.reserve(queues_.size());
  for (ShardId s = 0; s < shards(); ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void ParallelEngine::dispatch(PoolTask task) {
  std::unique_lock<std::mutex> lk(pool_mu_);
  pool_task_ = task;
  pool_pending_ = static_cast<unsigned>(workers_.size());
  ++pool_gen_;
  pool_cv_.notify_all();
  done_cv_.wait(lk, [this] { return pool_pending_ == 0; });
  pool_task_ = PoolTask::None;
  ++stats_.barriers;
}

void ParallelEngine::worker_main(ShardId shard) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    PoolTask task;
    util::SimTime window_end;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return pool_gen_ != seen_gen; });
      seen_gen = pool_gen_;
      task = pool_task_;
      window_end = pool_window_end_;
    }
    // Outside the lock: each branch touches only this shard's queue,
    // counters, mailbox row, and clock — the dispatch/done rendezvous is
    // the only synchronization the window protocol needs.
    if (task == PoolTask::RunWindow) {
      auto& q = queues_[shard];
      while (q.next_time() < window_end) {
        auto ev = q.pop();
        shard_now_[shard] = ev.when;
        ev.fn();
        ++counters_[shard].executed;
      }
    } else if (task == PoolTask::Compact) {
      queues_[shard].force_compact();
      ++counters_[shard].compactions;
    }
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (--pool_pending_ == 0) done_cv_.notify_one();
    }
    if (task == PoolTask::Exit) return;
  }
}

// --- OrderedCommit ---------------------------------------------------------

EventId ParallelEngine::schedule_global(ShardId shard, util::SimTime when,
                                        EventFn fn) {
  assert(shard < shards());
  const EventId id = next_id_++;
  queues_[shard].push_with_id(when, id, std::move(fn));
  owner_.emplace(id, shard);
  pending_when_.emplace(id, when);
  ++mirror_live_;
  ++counters_[shard].scheduled;
  return id;
}

bool ParallelEngine::cancel_global(EventId id) {
  const auto it = owner_.find(id);
  // Already executed (or never scheduled): the sequential queue's callers
  // only ever cancel ids they know are pending, so "not found" is the same
  // answer both engines give in practice.
  if (it == owner_.end()) return false;
  const ShardId shard = it->second;
  if (!queues_[shard].cancel(id)) return false;
  owner_.erase(it);
  const auto wit = pending_when_.find(id);
  assert(wit != pending_when_.end());
  cancelled_keys_.push(CancelKey{wit->second, id});
  pending_when_.erase(wit);
  --mirror_live_;
  ++mirror_tombstones_;
  maybe_global_compact();
  return true;
}

void ParallelEngine::mirror_prune_before(util::SimTime when, EventId id) {
  // In the sequential heap every cancelled entry that sorts before the next
  // live event surfaces at the top and is dropped by drop_cancelled_head()
  // before that event pops; replay the same drops against the mirror.
  while (!cancelled_keys_.empty()) {
    const CancelKey& top = cancelled_keys_.top();
    if (top.when > when || (top.when == when && top.id > id)) break;
    cancelled_keys_.pop();
    --mirror_tombstones_;
  }
}

void ParallelEngine::maybe_global_compact() {
  // The exact sequential trigger, applied to global occupancy. The physical
  // sweep fans out to the worker pool; each shard clears its own heap.
  if (mirror_tombstones_ <= mirror_live_ ||
      mirror_tombstones_ < EventQueue::kCompactMinTombstones) {
    return;
  }
  dispatch(PoolTask::Compact);
  ++stats_.compactions;
  stats_.tombstones_compacted += mirror_tombstones_;
  mirror_tombstones_ = 0;
  cancelled_keys_ = {};
}

std::uint64_t ParallelEngine::ordered_run(util::SimTime until,
                                          std::uint64_t max_events) {
  assert(sim_ != nullptr);
  sim_->stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !sim_->stop_requested_) {
    // Global-min (time, id) over the shard heads — the same total order the
    // single sequential heap pops in, because ids are allocated globally.
    const EventQueue* best_q = nullptr;
    ShardId best_shard = 0;
    EventQueue::Head best{};
    for (ShardId s = 0; s < shards(); ++s) {
      const auto head = queues_[s].peek();
      if (!head) continue;
      if (best_q == nullptr || head->when < best.when ||
          (head->when == best.when && head->id < best.id)) {
        best_q = &queues_[s];
        best_shard = s;
        best = *head;
      }
    }
    if (best_q == nullptr) {
      // Queue drained: the sequential drop_cancelled_head() would have
      // popped every remaining (all-cancelled) entry on its way to "empty".
      mirror_tombstones_ = 0;
      cancelled_keys_ = {};
      break;
    }
    mirror_prune_before(best.when, best.id);
    if (best.when > until) break;
    auto ev = queues_[best_shard].pop();
    owner_.erase(ev.id);
    pending_when_.erase(ev.id);
    --mirror_live_;
    if (ev.when >= window_end_) {
      window_end_ = ev.when + config_.lookahead;
      ++stats_.windows;
    }
    current_shard_ = best_shard;
    sim_->now_ = ev.when;
    ev.fn();
    current_shard_ = 0;
    ++n;
    ++sim_->executed_;
    ++counters_[best_shard].executed;
  }
  return n;
}

std::uint64_t ParallelEngine::run_until(util::SimTime until) {
  const std::uint64_t n =
      ordered_run(until, std::numeric_limits<std::uint64_t>::max());
  if (!sim_->stop_requested_ && until != util::kTimeInfinity &&
      sim_->now_ < until) {
    sim_->now_ = until;
  }
  return n;
}

std::uint64_t ParallelEngine::run_events(std::uint64_t max_events) {
  return ordered_run(util::kTimeInfinity, max_events);
}

bool ParallelEngine::idle() {
  const EventQueue* best_q = nullptr;
  EventQueue::Head best{};
  for (auto& q : queues_) {
    const auto head = q.peek();
    if (!head) continue;
    if (best_q == nullptr || head->when < best.when ||
        (head->when == best.when && head->id < best.id)) {
      best_q = &q;
      best = *head;
    }
  }
  // Keep the mirror in lockstep: the sequential idle() routes through
  // next_time(), which prunes head tombstones as a side effect.
  if (best_q == nullptr) {
    mirror_tombstones_ = 0;
    cancelled_keys_ = {};
    return true;
  }
  mirror_prune_before(best.when, best.id);
  return false;
}

// --- ShardConcurrent -------------------------------------------------------

ShardEvent ParallelEngine::schedule(ShardId shard, util::SimTime when,
                                    EventFn fn) {
  assert(shard < shards());
  const EventId id = queues_[shard].push(when, std::move(fn));
  ++counters_[shard].scheduled;
  return ShardEvent{shard, id};
}

bool ParallelEngine::cancel(ShardEvent handle) {
  return queues_[handle.shard].cancel(handle.id);
}

void ParallelEngine::post(ShardId from, ShardId to, util::SimTime when,
                          EventFn fn) {
  assert(from < shards() && to < shards());
  auto& mb = mailboxes_[static_cast<std::size_t>(from) * shards() + to];
  mb.staged.push_back(Staged{mb.next_seq++, when, std::move(fn)});
  ++counters_[from].posts_out;
}

void ParallelEngine::merge_mailboxes() {
  // Fixed (src, dst, seq) order: each mailbox is appended in seq order by
  // its single writer, and the src-major sweep below never depends on which
  // worker finished its window first.
  for (ShardId src = 0; src < shards(); ++src) {
    for (ShardId dst = 0; dst < shards(); ++dst) {
      auto& mb = mailboxes_[static_cast<std::size_t>(src) * shards() + dst];
      for (auto& m : mb.staged) {
        if (m.when < pool_window_end_) ++stats_.lookahead_violations;
        queues_[dst].push(m.when, std::move(m.fn));
        ++counters_[dst].scheduled;
        ++counters_[dst].posts_in;
        ++stats_.cross_shard_messages;
        ++stats_.merged_messages;
      }
      mb.staged.clear();
    }
  }
}

std::uint64_t ParallelEngine::run_windows_until(util::SimTime until) {
  std::uint64_t before = 0;
  for (const auto& c : counters_) before += c.executed;
  for (;;) {
    util::SimTime next = util::kTimeInfinity;
    for (auto& q : queues_) next = std::min(next, q.next_time());
    if (next == util::kTimeInfinity || next > until) break;
    // Half-open window [next, end): events at exactly `until` still run.
    util::SimTime end = next + config_.lookahead;
    if (until != util::kTimeInfinity && end > until) end = until + 1;
    pool_window_end_ = end;
    window_end_ = end;
    ++stats_.windows;
    dispatch(PoolTask::RunWindow);
    merge_mailboxes();
  }
  std::uint64_t after = 0;
  for (const auto& c : counters_) after += c.executed;
  return after - before;
}

// --- introspection ---------------------------------------------------------

std::size_t ParallelEngine::physical_live() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::size_t ParallelEngine::physical_tombstones() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.tombstones();
  return n;
}

void ParallelEngine::publish_queue_mirror(obs::MetricsRegistry& registry,
                                          obs::Labels labels) const {
  // Field-for-field what EventQueue::publish emits after a sequential run
  // of the same seed — same names, same values.
  registry.counter("sim.event_queue.scheduled", labels).set(next_id_);
  registry.counter("sim.event_queue.compactions", labels)
      .set(stats_.compactions);
  registry.counter("sim.event_queue.tombstones_compacted", labels)
      .set(stats_.tombstones_compacted);
  registry.gauge("sim.event_queue.live", labels)
      .set(static_cast<double>(mirror_live_));
  registry.gauge("sim.event_queue.tombstones", labels)
      .set(static_cast<double>(mirror_tombstones_));
}

void ParallelEngine::publish(obs::MetricsRegistry& registry,
                             obs::Labels labels) const {
  registry.gauge("sim.parallel.shards", labels)
      .set(static_cast<double>(shards()));
  registry.counter("sim.parallel.windows", labels).set(stats_.windows);
  registry.counter("sim.parallel.barriers", labels).set(stats_.barriers);
  registry.counter("sim.parallel.cross_shard_messages", labels)
      .set(stats_.cross_shard_messages);
  registry.counter("sim.parallel.merged_messages", labels)
      .set(stats_.merged_messages);
  registry.counter("sim.parallel.lookahead_violations", labels)
      .set(stats_.lookahead_violations);
  for (ShardId s = 0; s < shards(); ++s) {
    obs::Labels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(s));
    const ShardCounters& c = counters_[s];
    registry.counter("sim.parallel.shard.executed", shard_labels)
        .set(c.executed);
    registry.counter("sim.parallel.shard.scheduled", shard_labels)
        .set(c.scheduled);
    registry.counter("sim.parallel.shard.posts_out", shard_labels)
        .set(c.posts_out);
    registry.counter("sim.parallel.shard.posts_in", shard_labels)
        .set(c.posts_in);
    registry.counter("sim.parallel.shard.compactions", shard_labels)
        .set(c.compactions);
  }
}

}  // namespace p2prm::sim

#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"

namespace p2prm::sim {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ParallelEngine::ParallelEngine(ParallelConfig config) : config_(config) {
  if (config_.threads < 1) {
    throw std::invalid_argument("ParallelEngine: need at least one thread");
  }
  if (config_.lookahead < 1) {
    throw std::invalid_argument("ParallelEngine: lookahead must be positive");
  }
  const auto n = static_cast<std::size_t>(config_.threads);
  queues_ = std::vector<EventQueue>(n);
  counters_.resize(n);
  timers_.resize(n);
  shard_now_.assign(n, util::kTimeZero);
  mailboxes_ = std::vector<Mailbox>(n * n);
  pair_la_.assign(n * n, config_.lookahead);
  rebuild_closure();
  window_ends_.assign(n, util::kTimeZero);
  head_after_merge_.assign(n, util::kTimeInfinity);
  merge_scratch_.resize(n);
  load_ewma_.assign(n, 0.0);
  prev_executed_.assign(n, 0);
  // Per-shard auto-compaction would fire on local occupancy, which depends
  // on the shard partition; the global trigger below fires on the same
  // occupancy a sequential run sees.
  for (auto& q : queues_) q.set_auto_compact(false);
  start_workers();
}

ParallelEngine::~ParallelEngine() {
  dispatch(PoolTask::Exit);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ParallelEngine::set_pair_lookahead(
    std::vector<util::SimDuration> matrix) {
  const std::size_t n = shards();
  if (matrix.size() != n * n) {
    throw std::invalid_argument(
        "ParallelEngine: pair lookahead matrix must be shards^2");
  }
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src != dst && matrix[src * n + dst] < 1) {
        throw std::invalid_argument(
            "ParallelEngine: off-diagonal lookahead must be positive");
      }
    }
  }
  pair_la_ = std::move(matrix);
  rebuild_closure();
}

void ParallelEngine::rebuild_closure() {
  const std::size_t n = shards();
  pair_closure_.assign(n * n, util::kTimeInfinity);
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      // Only off-diagonal entries are edges; the diagonal of the closure
      // will come out as the shortest cycle through other shards.
      if (src != dst) pair_closure_[src * n + dst] = pair_la_[src * n + dst];
    }
  }
  // Floyd-Warshall in the (min, +) semiring. Initializing the diagonal to
  // infinity (rather than zero) makes every entry the least-delay path of
  // >= 1 hop — including src == dst, where it is the shortest feedback
  // cycle. All edges are >= 1 tick, so the recurrence converges.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const util::SimDuration ik = pair_closure_[i * n + k];
      if (ik == util::kTimeInfinity) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const util::SimDuration kj = pair_closure_[k * n + j];
        if (kj == util::kTimeInfinity) continue;
        pair_closure_[i * n + j] = std::min(pair_closure_[i * n + j], ik + kj);
      }
    }
  }
}

// --- worker pool -----------------------------------------------------------

void ParallelEngine::start_workers() {
  workers_.reserve(queues_.size());
  for (ShardId s = 0; s < shards(); ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void ParallelEngine::dispatch_async(PoolTask task) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  assert(!pool_busy_);
  pool_task_ = task;
  pool_pending_ = static_cast<unsigned>(workers_.size());
  ++pool_gen_;
  pool_busy_ = true;
  pool_cv_.notify_all();
}

void ParallelEngine::wait_pool() {
  std::unique_lock<std::mutex> lk(pool_mu_);
  if (!pool_busy_) return;
  done_cv_.wait(lk, [this] { return pool_pending_ == 0; });
  pool_task_ = PoolTask::None;
  pool_busy_ = false;
  ++stats_.barriers;
}

void ParallelEngine::dispatch(PoolTask task) {
  dispatch_async(task);
  wait_pool();
}

void ParallelEngine::worker_main(ShardId shard) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    PoolTask task;
    {
      const std::uint64_t w0 = now_ns();
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return pool_gen_ != seen_gen; });
      seen_gen = pool_gen_;
      task = pool_task_;
      timers_[shard].barrier_wait_ns += now_ns() - w0;
    }
    // Outside the lock: each branch touches only this shard's queue,
    // counters, timers, mailbox row (execute) / column (flush), and clock —
    // the dispatch/done rendezvous is the only synchronization the window
    // protocol needs.
    if (task == PoolTask::RunWindow) {
      const std::uint64_t t0 = now_ns();
      auto& q = queues_[shard];
      const util::SimTime end = window_ends_[shard];
      while (q.next_time() < end) {
        auto ev = q.pop();
        shard_now_[shard] = ev.when;
        ev.fn();
        ++counters_[shard].executed;
      }
      timers_[shard].execute_ns += now_ns() - t0;
    } else if (task == PoolTask::MergeInbox) {
      const std::uint64_t t0 = now_ns();
      merge_inbox(shard);
      timers_[shard].mailbox_flush_ns += now_ns() - t0;
    } else if (task == PoolTask::Compact) {
      queues_[shard].force_compact();
      ++counters_[shard].compactions;
    }
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (--pool_pending_ == 0) done_cv_.notify_one();
    }
    if (task == PoolTask::Exit) return;
  }
}

// --- OrderedCommit ---------------------------------------------------------

EventId ParallelEngine::schedule_global(ShardId shard, util::SimTime when,
                                        EventFn fn) {
  assert(shard < shards());
  const EventId id = next_id_++;
  queues_[shard].push_with_id(when, id, std::move(fn));
  pending_.try_emplace(id, Pending{shard, when});
  ++mirror_live_;
  ++counters_[shard].scheduled;
  return id;
}

bool ParallelEngine::cancel_global(EventId id) {
  // Already executed (or never scheduled): the sequential queue's callers
  // only ever cancel ids they know are pending, so "not found" is the same
  // answer both engines give in practice.
  const Pending* p = pending_.find(id);
  if (p == nullptr) return false;
  const ShardId shard = p->shard;
  const util::SimTime when = p->when;
  if (!queues_[shard].cancel(id)) return false;
  pending_.erase(id);
  cancelled_keys_.push(CancelKey{when, id});
  --mirror_live_;
  ++mirror_tombstones_;
  maybe_global_compact();
  return true;
}

void ParallelEngine::mirror_prune_before(util::SimTime when, EventId id) {
  // In the sequential heap every cancelled entry that sorts before the next
  // live event surfaces at the top and is dropped by drop_cancelled_head()
  // before that event pops; replay the same drops against the mirror.
  while (!cancelled_keys_.empty()) {
    const CancelKey& top = cancelled_keys_.top();
    if (top.when > when || (top.when == when && top.id > id)) break;
    cancelled_keys_.pop();
    --mirror_tombstones_;
  }
}

void ParallelEngine::maybe_global_compact() {
  // The exact sequential trigger, applied to global occupancy. The physical
  // sweep fans out to the worker pool; each shard clears its own heap.
  if (mirror_tombstones_ <= mirror_live_ ||
      mirror_tombstones_ < EventQueue::kCompactMinTombstones) {
    return;
  }
  dispatch(PoolTask::Compact);
  ++stats_.compactions;
  stats_.tombstones_compacted += mirror_tombstones_;
  mirror_tombstones_ = 0;
  cancelled_keys_ = {};
}

void ParallelEngine::note_window() {
  const double a = config_.load_ewma_alpha;
  for (ShardId s = 0; s < shards(); ++s) {
    const std::uint64_t ex = counters_[s].executed;
    const auto delta = static_cast<double>(ex - prev_executed_[s]);
    prev_executed_[s] = ex;
    load_ewma_[s] = a * delta + (1.0 - a) * load_ewma_[s];
  }
  if (config_.rebalance_interval_windows == 0 || !rebalance_hook_) return;
  if (++windows_since_rebalance_ < config_.rebalance_interval_windows) return;
  windows_since_rebalance_ = 0;
  ++stats_.rebalances;
  // The hook runs on the coordinator between windows (ShardConcurrent: at
  // the flush barrier; OrderedCommit: between two committed events). It
  // migrates routing and refreshes the lookahead matrix but never touches
  // the queues, so it cannot perturb the commit order.
  rebalance_hook_(load_ewma_);
}

std::uint64_t ParallelEngine::ordered_run(util::SimTime until,
                                          std::uint64_t max_events) {
  assert(sim_ != nullptr);
  const std::uint64_t t0 = now_ns();
  sim_->stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !sim_->stop_requested_) {
    // Global-min (time, id) over the shard heads — the same total order the
    // single sequential heap pops in, because ids are allocated globally.
    const EventQueue* best_q = nullptr;
    ShardId best_shard = 0;
    EventQueue::Head best{};
    for (ShardId s = 0; s < shards(); ++s) {
      const auto head = queues_[s].peek();
      if (!head) continue;
      if (best_q == nullptr || head->when < best.when ||
          (head->when == best.when && head->id < best.id)) {
        best_q = &queues_[s];
        best_shard = s;
        best = *head;
      }
    }
    if (best_q == nullptr) {
      // Queue drained: the sequential drop_cancelled_head() would have
      // popped every remaining (all-cancelled) entry on its way to "empty".
      mirror_tombstones_ = 0;
      cancelled_keys_ = {};
      break;
    }
    mirror_prune_before(best.when, best.id);
    if (best.when > until) break;
    auto ev = queues_[best_shard].pop();
    pending_.erase(ev.id);
    --mirror_live_;
    if (ev.when >= window_end_) {
      window_end_ = ev.when + config_.lookahead;
      ++stats_.windows;
      note_window();
    }
    current_shard_ = best_shard;
    sim_->now_ = ev.when;
    ev.fn();
    current_shard_ = 0;
    ++n;
    ++sim_->executed_;
    ++counters_[best_shard].executed;
  }
  stats_.commit_drain_ns += now_ns() - t0;
  return n;
}

std::uint64_t ParallelEngine::run_until(util::SimTime until) {
  const std::uint64_t n =
      ordered_run(until, std::numeric_limits<std::uint64_t>::max());
  if (!sim_->stop_requested_ && until != util::kTimeInfinity &&
      sim_->now_ < until) {
    sim_->now_ = until;
  }
  return n;
}

std::uint64_t ParallelEngine::run_events(std::uint64_t max_events) {
  return ordered_run(util::kTimeInfinity, max_events);
}

bool ParallelEngine::idle() {
  const EventQueue* best_q = nullptr;
  EventQueue::Head best{};
  for (auto& q : queues_) {
    const auto head = q.peek();
    if (!head) continue;
    if (best_q == nullptr || head->when < best.when ||
        (head->when == best.when && head->id < best.id)) {
      best_q = &q;
      best = *head;
    }
  }
  // Keep the mirror in lockstep: the sequential idle() routes through
  // next_time(), which prunes head tombstones as a side effect.
  if (best_q == nullptr) {
    mirror_tombstones_ = 0;
    cancelled_keys_ = {};
    return true;
  }
  mirror_prune_before(best.when, best.id);
  return false;
}

// --- ShardConcurrent -------------------------------------------------------

ShardEvent ParallelEngine::schedule(ShardId shard, util::SimTime when,
                                    EventFn fn) {
  assert(shard < shards());
  const EventId id = queues_[shard].push(when, std::move(fn));
  ++counters_[shard].scheduled;
  return ShardEvent{shard, id};
}

bool ParallelEngine::cancel(ShardEvent handle) {
  return queues_[handle.shard].cancel(handle.id);
}

void ParallelEngine::post(ShardId from, ShardId to, util::SimTime when,
                          EventFn fn) {
  assert(from < shards() && to < shards());
  auto& mb = mailboxes_[static_cast<std::size_t>(from) * shards() + to];
  mb.staged.push_back(Staged{mb.next_seq++, when, std::move(fn)});
  ++counters_[from].posts_out;
}

void ParallelEngine::merge_inbox(ShardId dst) {
  // Fixed (src, seq) order: each mailbox is appended in seq order by its
  // single writer during the execute phase, and this column sweep runs
  // src-major regardless of which worker finished its window first — the
  // merged sequence (and the per-queue ids it is assigned) is a pure
  // function of the seed. Ids continue the destination queue's own
  // sequence, exactly as repeated push() calls would assign them.
  auto& q = queues_[dst];
  auto& batch = merge_scratch_[dst];
  auto& c = counters_[dst];
  const util::SimTime end = window_ends_[dst];
  auto id = static_cast<EventId>(q.total_scheduled());
  for (ShardId src = 0; src < shards(); ++src) {
    auto& mb = mailboxes_[static_cast<std::size_t>(src) * shards() + dst];
    for (auto& m : mb.staged) {
      if (m.when < end) ++c.lookahead_violations;
      // Direct out-of-order check, independent of window geometry: a
      // message below the destination's own clock lands in its executed
      // past. shard_now_[dst] is this worker's own row, last written by it
      // during the execute phase — no other thread touches it.
      if (m.when < shard_now_[dst]) ++c.causality_violations;
      batch.push_back(EventQueue::Popped{m.when, id++, std::move(m.fn)});
      ++c.scheduled;
      ++c.posts_in;
    }
    mb.staged.clear();
  }
  q.push_bulk(batch);
  head_after_merge_[dst] = q.next_time();
}

util::SimTime ParallelEngine::plan_windows(
    const std::vector<util::SimTime>& next, util::SimTime until) {
  util::SimTime global = util::kTimeInfinity;
  for (const auto t : next) global = std::min(global, t);
  if (global == util::kTimeInfinity || global > until) return global;
  const ShardId n = shards();
  for (ShardId w = 0; w < n; ++w) {
    // end[w] = min over src of (next[src] + D(src, w)), D the min-plus
    // closure of the pair matrix: no message chain rooted at any event
    // still pending anywhere — across any number of relay hops and window
    // barriers — can reach w before end[w]. The src == w term (shortest
    // feedback cycle) is what bounds a shard when every other queue is
    // empty: an empty shard cannot originate traffic, but it can relay
    // w's own output back at it. Soundness invariant: everything executed
    // on w is < end[w], and every later merge into w arrives >= end[w]
    // (one hop from src costs L(src, w) >= D(src, w)), so no event is ever
    // delivered into a shard's executed past. Every end[w] is >= global +
    // min closure entry > global, so the argmin shard always progresses.
    util::SimTime end = util::kTimeInfinity;
    for (ShardId src = 0; src < n; ++src) {
      if (next[src] == util::kTimeInfinity) continue;
      const util::SimDuration d =
          pair_closure_[static_cast<std::size_t>(src) * n + w];
      if (d == util::kTimeInfinity) continue;
      end = std::min(end, next[src] + d);
    }
    // Half-open windows [.., end): events at exactly `until` still run.
    // Only ever clamp DOWN — raising a window end past the conservative
    // bound would re-open the out-of-order delivery hole. `end` can only
    // be infinite single-shard (no cross-shard chains exist at all), where
    // an unbounded window is trivially safe.
    if (until != util::kTimeInfinity) {
      end = std::min(end, until + 1);
    }
    window_ends_[w] = end;
  }
  return global;
}

std::uint64_t ParallelEngine::run_windows_until(util::SimTime until) {
  std::uint64_t before = 0;
  for (const auto& c : counters_) before += c.executed;
  std::vector<util::SimTime> next(shards());
  for (ShardId s = 0; s < shards(); ++s) next[s] = queues_[s].next_time();
  for (;;) {
    std::uint64_t t0 = now_ns();
    const util::SimTime global = plan_windows(next, until);
    stats_.window_plan_ns += now_ns() - t0;
    if (global == util::kTimeInfinity || global > until) break;
    ++stats_.windows;
    // Execute phase: every worker drains its own window concurrently.
    dispatch(PoolTask::RunWindow);
    // Flush phase, pipelined: destination workers drain their mailbox
    // columns while the coordinator folds the window's load sample, runs
    // the rebalance hook on its interval, and prepares the next plan.
    dispatch_async(PoolTask::MergeInbox);
    t0 = now_ns();
    note_window();
    stats_.window_plan_ns += now_ns() - t0;
    wait_pool();
    // Fold the per-shard merge tallies into the engine aggregates (each is
    // cumulative and single-writer, so a sum after the barrier is exact).
    std::uint64_t posts_in = 0;
    std::uint64_t violations = 0;
    std::uint64_t causality = 0;
    for (const auto& c : counters_) {
      posts_in += c.posts_in;
      violations += c.lookahead_violations;
      causality += c.causality_violations;
    }
    stats_.cross_shard_messages = posts_in;
    stats_.merged_messages = posts_in;
    stats_.lookahead_violations = violations;
    stats_.causality_violations = causality;
    for (ShardId s = 0; s < shards(); ++s) next[s] = head_after_merge_[s];
  }
  std::uint64_t after = 0;
  for (const auto& c : counters_) after += c.executed;
  return after - before;
}

// --- introspection ---------------------------------------------------------

std::size_t ParallelEngine::physical_live() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::size_t ParallelEngine::physical_tombstones() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.tombstones();
  return n;
}

void ParallelEngine::publish_queue_mirror(obs::MetricsRegistry& registry,
                                          obs::Labels labels) const {
  // Field-for-field what EventQueue::publish emits after a sequential run
  // of the same seed — same names, same values.
  registry.counter("sim.event_queue.scheduled", labels).set(next_id_);
  registry.counter("sim.event_queue.compactions", labels)
      .set(stats_.compactions);
  registry.counter("sim.event_queue.tombstones_compacted", labels)
      .set(stats_.tombstones_compacted);
  registry.gauge("sim.event_queue.live", labels)
      .set(static_cast<double>(mirror_live_));
  registry.gauge("sim.event_queue.tombstones", labels)
      .set(static_cast<double>(mirror_tombstones_));
}

void ParallelEngine::publish(obs::MetricsRegistry& registry,
                             obs::Labels labels) const {
  registry.gauge("sim.parallel.shards", labels)
      .set(static_cast<double>(shards()));
  registry.counter("sim.parallel.windows", labels).set(stats_.windows);
  registry.counter("sim.parallel.barriers", labels).set(stats_.barriers);
  registry.counter("sim.parallel.cross_shard_messages", labels)
      .set(stats_.cross_shard_messages);
  registry.counter("sim.parallel.merged_messages", labels)
      .set(stats_.merged_messages);
  registry.counter("sim.parallel.lookahead_violations", labels)
      .set(stats_.lookahead_violations);
  registry.counter("sim.parallel.causality_violations", labels)
      .set(stats_.causality_violations);
  registry.counter("sim.parallel.rebalances", labels).set(stats_.rebalances);
  // Stage timing breakdown (wall-clock ns; nondeterministic — never part of
  // a compared snapshot). Totals across workers plus the coordinator rows.
  std::uint64_t execute_ns = 0, flush_ns = 0, wait_ns = 0;
  for (ShardId s = 0; s < shards(); ++s) {
    execute_ns += timers_[s].execute_ns;
    flush_ns += timers_[s].mailbox_flush_ns;
    wait_ns += timers_[s].barrier_wait_ns;
  }
  registry.counter("sim.parallel.stage.execute_ns", labels).set(execute_ns);
  registry.counter("sim.parallel.stage.mailbox_flush_ns", labels)
      .set(flush_ns);
  registry.counter("sim.parallel.stage.barrier_wait_ns", labels).set(wait_ns);
  registry.counter("sim.parallel.stage.commit_drain_ns", labels)
      .set(stats_.commit_drain_ns);
  registry.counter("sim.parallel.stage.window_plan_ns", labels)
      .set(stats_.window_plan_ns);
  for (ShardId s = 0; s < shards(); ++s) {
    obs::Labels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(s));
    const ShardCounters& c = counters_[s];
    registry.counter("sim.parallel.shard.executed", shard_labels)
        .set(c.executed);
    registry.counter("sim.parallel.shard.scheduled", shard_labels)
        .set(c.scheduled);
    registry.counter("sim.parallel.shard.posts_out", shard_labels)
        .set(c.posts_out);
    registry.counter("sim.parallel.shard.posts_in", shard_labels)
        .set(c.posts_in);
    registry.counter("sim.parallel.shard.compactions", shard_labels)
        .set(c.compactions);
    registry.gauge("sim.parallel.shard.load_ewma", shard_labels)
        .set(load_ewma_[s]);
  }
}

}  // namespace p2prm::sim

// The pluggable message transport the control plane runs on.
//
// Two backends implement this interface:
//   - net::Network    — the deterministic simulator transport (modelled
//                       latency/bandwidth, partitions, fault hooks). Still
//                       the determinism oracle for every test.
//   - net::SocketTransport — real non-blocking POSIX sockets on localhost
//                       with length-prefixed frames (net/wire.hpp), used by
//                       the p2prm_peer binary and the loopback deployment.
//
// The contract both share, and every protocol layer relies on:
//   - send() is fire-and-forget unicast; delivery happens strictly after
//     the send returns (never inline).
//   - Messages to unreachable peers (detached endpoints, dead processes)
//     are silently dropped and counted as undeliverable — exactly the
//     failure signal the paper's RM failure detection and backup-RM
//     takeover react to. There is no connection-level error upcall.
//   - Delivery order per (from, to) pair is FIFO.
//
// See docs/TRANSPORT.md for the full API and frame-format description.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/message.hpp"
#include "obs/metrics_registry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::net {

struct LinkCapacity {
  double uplink_bytes_per_s = 1.25e6;    // ~10 Mbit/s default
  double downlink_bytes_per_s = 1.25e6;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     // random loss
  std::uint64_t messages_partitioned = 0; // blocked by an active partition
  std::uint64_t messages_undeliverable = 0;  // receiver detached/unreachable
  std::uint64_t messages_fault_dropped = 0;  // dropped by a FaultHook
  std::uint64_t messages_duplicated = 0;     // extra copies from a FaultHook
  std::uint64_t messages_delayed = 0;        // extra delay from a FaultHook
  // Socket-only (always 0 on the sim transport):
  std::uint64_t frames_corrupt = 0;   // CRC-32C trailer mismatch, dropped
  std::uint64_t sessions_reset = 0;   // TCP sessions reset by a partition cut
  std::uint64_t bytes_sent = 0;
  // Keyed by Message::type_name(). std::map keeps report output sorted.
  std::map<std::string, std::uint64_t> per_type_count;
  std::map<std::string, std::uint64_t> per_type_bytes;
};

// Writes the net.* counter series for `stats` (shared by both backends, so
// dashboards read the same schema whichever transport ran).
void publish_stats(const NetworkStats& stats, obs::MetricsRegistry& registry,
                   obs::Labels labels);

class Transport {
 public:
  using Handler =
      std::function<void(util::PeerId from, const Message& message)>;

  virtual ~Transport() = default;

  // Attach a local peer endpoint. The handler runs at delivery time.
  virtual void attach(util::PeerId peer, LinkCapacity capacity,
                      Handler handler) = 0;
  // Detach (departure or crash): pending deliveries to this peer vanish.
  virtual void detach(util::PeerId peer) = 0;
  [[nodiscard]] virtual bool attached(util::PeerId peer) const = 0;

  // Fire-and-forget unicast. Ownership of the message transfers; delivery
  // (if any) happens strictly after the call returns.
  virtual void send(util::PeerId from, util::PeerId to, MessagePtr message) = 0;

  // Estimated one-way delay for a message of `bytes` from a to b — what an
  // RM uses to predict communication times when composing a service graph
  // (§3.3). Sim: modelled latency + transmission. Socket: a flat RTT/2
  // heuristic scaled into sim time.
  [[nodiscard]] virtual util::SimDuration estimate_delay(
      util::PeerId a, util::PeerId b, std::size_t bytes) const = 0;

  [[nodiscard]] virtual const NetworkStats& stats() const = 0;
  virtual void publish(obs::MetricsRegistry& registry,
                       obs::Labels labels = {}) const = 0;
};

}  // namespace p2prm::net

// net::SocketTransport — the Transport backend that runs the control plane
// over real non-blocking POSIX sockets on localhost.
//
// Topology: every peer id maps to a fixed TCP port (base_port + id), and a
// process listens on one port per peer it hosts. Outbound traffic shares
// one TCP connection per *remote peer* — frames carry (from, to) in the
// header (net/wire.hpp), so many local peers multiplex one connection and
// the receiving process dispatches on `to`.
//
// The transport is single-threaded and pump-driven: send() only encodes
// and queues; all socket I/O (connect completion, accept, read, write,
// reconnect backoff) happens inside pump(), which the realtime driver
// calls between simulator event batches. That preserves the Transport
// contract that delivery never happens inline with send().
//
// Failure semantics mirror the sim Network: a refused/reset connection
// puts the session into Backoff (retry schedule from
// SocketConfig.connect, a util::BackoffPolicy) and frames sent meanwhile
// are dropped and counted undeliverable — the same silent-loss signal the
// RM failure detector and backup-RM takeover react to when a process is
// kill -9'd.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <map>

#include "net/fault_shim.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace p2prm::net {

// Deployment parameters shared by every process of one run (the launcher
// passes them on each peer's command line).
struct SocketConfig {
  std::string host = "127.0.0.1";
  // Peer id N listens on base_port + N. The default sits below Linux's
  // ephemeral range (32768+): connecting to an unbound port inside that
  // range can self-connect (simultaneous open to one's own ephemeral
  // port), leaving a link that looks established but delivers nothing.
  // The transport also detects and kills self-connects defensively.
  std::uint16_t base_port = 19000;
  // Wall-seconds per sim-second for the realtime driver: 1.0 runs the
  // scenario in real time, 0.1 runs it 10x faster than modelled time.
  double time_scale = 1.0;
  // Reconnect schedule after a refused or reset connection. Delays are in
  // sim-time units and scaled by time_scale into wall time; once the
  // schedule is exhausted the transport keeps retrying at max_delay (a
  // restarted process must eventually be rediscovered).
  util::BackoffPolicy connect{util::milliseconds(50), 2.0, util::seconds(2),
                              8, 0.1};
  // Bound on bytes queued toward one remote peer while its connection is
  // still being established; overflow drops frames as undeliverable.
  std::size_t max_queued_bytes = 8u << 20;
};

class SocketTransport final : public Transport {
 public:
  // Decodes one frame body by tag (core::decode_message in production; the
  // indirection keeps net below core in the layering). Returns nullptr for
  // unknown tags and malformed bodies.
  using Decoder = MessagePtr (*)(WireType type, Reader& body);

  SocketTransport(SocketConfig config, Decoder decoder);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- Transport -------------------------------------------------------------
  // attach() binds and listens on port_of(peer). Throws std::runtime_error
  // when the port is taken (two deployments colliding is a configuration
  // error worth failing loudly on).
  void attach(util::PeerId peer, LinkCapacity capacity,
              Handler handler) override;
  void detach(util::PeerId peer) override;
  [[nodiscard]] bool attached(util::PeerId peer) const override;
  void send(util::PeerId from, util::PeerId to, MessagePtr message) override;
  // Flat loopback heuristic: ~100us plus transmission at ~1 GbE. The RM
  // only uses this to rank candidate paths, so absolute accuracy is not
  // load-bearing.
  [[nodiscard]] util::SimDuration estimate_delay(
      util::PeerId a, util::PeerId b, std::size_t bytes) const override;
  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  void publish(obs::MetricsRegistry& registry,
               obs::Labels labels = {}) const override;

  // --- pump ------------------------------------------------------------------
  // One I/O round: waits up to timeout_ms for socket readiness, then
  // accepts, completes connects, drains writes, reads frames and invokes
  // handlers. Returns the number of messages delivered to local handlers.
  std::size_t pump(int timeout_ms);

  // True when every outbound queue has been flushed to the kernel (used to
  // linger briefly at shutdown so final reports are not cut off).
  [[nodiscard]] bool flushed() const;

  [[nodiscard]] std::uint16_t port_of(util::PeerId peer) const;

  // --- fault shim ------------------------------------------------------------
  // Install (or clear, with nullptr) the frame-granularity fault shim.
  // While installed, every outbound frame gets a drop/delay/duplicate
  // verdict, frames crossing an active partition cut are blackholed on
  // send *and* dispatch, and pump() resets TCP sessions that cross a
  // freshly declared cut (counted net.socket.reset). The shim outlives
  // this transport's use of it — callers own the lifetime
  // (fault::SocketFaultInjector clears the pointer on destruction).
  void set_fault_shim(FrameFaultShim* shim);
  [[nodiscard]] FrameFaultShim* fault_shim() const { return shim_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class LinkState { Connecting, Connected, Backoff };

  // One outbound connection per remote peer, shared by all local senders.
  struct Session {
    int fd = -1;
    LinkState state = LinkState::Connecting;
    int attempt = 0;  // connect attempts since the last success
    Clock::time_point retry_at{};
    std::vector<std::uint8_t> out;  // un-flushed frame bytes
    std::size_t out_off = 0;        // bytes of `out` already written
    std::size_t out_frames = 0;     // frames represented by `out`
  };

  // One accepted inbound connection; frames are dispatched on header.to,
  // so the transport never needs to know which remote it belongs to.
  struct Inbound {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };

  struct Endpoint {
    int listen_fd = -1;
    Handler handler;
  };

  // One frame held back by a shim Delay/Reorder verdict (or the trailing
  // copy of a Duplicate verdict), released into its session's out buffer
  // once `release` passes.
  struct HeldFrame {
    Clock::time_point release{};
    util::PeerId from;
    util::PeerId to;
    std::vector<std::uint8_t> frame;
  };

  Session& session_to(util::PeerId to);
  void start_connect(util::PeerId to, Session& s);
  // Connection refused/reset/exhausted queue: drop pending frames as
  // undeliverable and schedule the next connect attempt.
  void fail_session(util::PeerId to, Session& s);
  void drain_writes(util::PeerId to, Session& s);
  // Reads as much as is available, slicing complete frames off the front
  // of the buffer. Returns false when the connection died.
  bool read_frames(Inbound& in, std::size_t& delivered);
  void deliver_frame(const std::uint8_t* data, std::size_t len,
                     std::size_t& delivered);
  [[nodiscard]] Clock::duration scaled(util::SimDuration d) const;
  // Move due held frames into their sessions' out buffers.
  void release_held(Clock::time_point now);
  // After a partition epoch change: reset every session whose remote is
  // severed from all attached local peers.
  void apply_partition_resets();

  SocketConfig config_;
  Decoder decoder_;
  NetworkStats stats_;
  std::unordered_map<std::uint64_t, Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::vector<Inbound> inbound_;
  util::Rng backoff_rng_{0x5eeded};

  FrameFaultShim* shim_ = nullptr;
  std::uint64_t shim_epoch_seen_ = 0;
  // Frames offered per ordered (from, to) link — the shim's decision index.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> link_seq_;
  std::vector<HeldFrame> held_;
};

}  // namespace p2prm::net

#include "net/transport.hpp"

namespace p2prm::net {

void publish_stats(const NetworkStats& stats, obs::MetricsRegistry& registry,
                   obs::Labels labels) {
  registry.counter("net.messages_sent", labels).set(stats.messages_sent);
  registry.counter("net.messages_delivered", labels)
      .set(stats.messages_delivered);
  registry.counter("net.messages_dropped", labels).set(stats.messages_dropped);
  registry.counter("net.messages_partitioned", labels)
      .set(stats.messages_partitioned);
  registry.counter("net.messages_undeliverable", labels)
      .set(stats.messages_undeliverable);
  registry.counter("net.messages_fault_dropped", labels)
      .set(stats.messages_fault_dropped);
  registry.counter("net.messages_duplicated", labels)
      .set(stats.messages_duplicated);
  registry.counter("net.messages_delayed", labels).set(stats.messages_delayed);
  registry.counter("net.bytes_sent", labels).set(stats.bytes_sent);
  // Socket-mode fault/integrity series (docs/TRANSPORT.md). Same loss
  // signal RM failure detection consumes; all 0 under the sim transport.
  registry.counter("net.socket.corrupt", labels).set(stats.frames_corrupt);
  registry.counter("net.socket.dropped", labels)
      .set(stats.messages_fault_dropped);
  registry.counter("net.socket.delayed", labels).set(stats.messages_delayed);
  registry.counter("net.socket.reset", labels).set(stats.sessions_reset);
  for (const auto& [type, count] : stats.per_type_count) {
    obs::Labels typed = labels;
    typed.emplace_back("type", type);
    registry.counter("net.messages_by_type", typed).set(count);
  }
  for (const auto& [type, bytes] : stats.per_type_bytes) {
    obs::Labels typed = labels;
    typed.emplace_back("type", type);
    registry.counter("net.bytes_by_type", typed).set(bytes);
  }
}

}  // namespace p2prm::net

// Bounds-checked binary codec primitives for the wire protocol.
//
// Little-endian, fixed-width integers; doubles via bit_cast of their IEEE
// representation; strings and vectors carry a u32 length prefix. Writer
// appends to a byte vector; Reader consumes a span and latches a failure
// flag instead of throwing, so a truncated or corrupt frame decodes to
// "not ok" rather than UB (the socket transport drops such frames and
// counts them).
//
// Every concrete net::Message implements encode_body()/decode_body() with
// these primitives, and its wire_size() must equal the encoded frame size
// exactly — the codec round-trip property test (tests/codec_test.cpp) pins
// that, so sim traffic accounting and real socket frames cannot drift.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::net {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  template <typename Tag>
  void id(util::StrongId<Tag> v) {
    u64(v.value());
  }
  void time(util::SimTime v) { i64(v); }  // SimDuration is the same type

  // u32 length prefix + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  // Count prefix for any repeated field; elements follow.
  void count(std::size_t n) { u32(static_cast<std::uint32_t>(n)); }
  // Zero padding (unused reserved bytes / modelled payload bulk).
  void zeros(std::size_t n) { out_.resize(out_.size() + n, 0); }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const { return ok_; }
  // True when every byte was consumed and no read overran.
  [[nodiscard]] bool done() const { return ok_ && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  template <typename Tag>
  util::StrongId<Tag> id() {
    return util::StrongId<Tag>{u64()};
  }
  util::SimTime time() { return i64(); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  // Count prefix, bounded: a hostile/corrupt count larger than the bytes
  // that could possibly back it fails the read instead of ballooning an
  // allocation. `min_elem_bytes` is the smallest encoding of one element.
  std::size_t count(std::size_t min_elem_bytes = 1) {
    const std::uint32_t n = u32();
    if (!ok_ || (min_elem_bytes > 0 && n > remaining() / min_elem_bytes)) {
      ok_ = false;
      return 0;
    }
    return n;
  }
  void skip(std::size_t n) {
    if (n > remaining()) {
      ok_ = false;
      return;
    }
    pos_ += n;
  }

 private:
  void take(void* out, std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace p2prm::net

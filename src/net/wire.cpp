#include "net/wire.hpp"

#include <bit>

#include "net/message.hpp"
#include "util/crc32c.hpp"

namespace p2prm::net {

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

void encode_frame(util::PeerId from, util::PeerId to, const Message& message,
                  std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  Writer w(out);
  w.u32(0);  // length placeholder
  w.id(from);
  w.id(to);
  w.u16(static_cast<std::uint16_t>(message.wire_type()));
  message.encode_body(w);
  // CRC-32C over everything between the length prefix and the trailer.
  w.u32(util::crc32c(out.data() + start + 4, out.size() - start - 4));
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - start - 4);
  std::memcpy(out.data() + start, &len, sizeof len);
}

bool frame_crc_ok(const std::uint8_t* post_len, std::size_t len) {
  if (len < kFrameHeaderBytes - 4 + kFrameCrcBytes) return false;
  std::uint32_t trailer = 0;
  std::memcpy(&trailer, post_len + len - kFrameCrcBytes, sizeof trailer);
  return util::crc32c(post_len, len - kFrameCrcBytes) == trailer;
}

FrameHeader read_frame_header(Reader& r) {
  FrameHeader h;
  h.from = r.id<util::PeerIdTag>();
  h.to = r.id<util::PeerIdTag>();
  h.type = static_cast<WireType>(r.u16());
  return h;
}

}  // namespace p2prm::net

// net::RealtimeDriver — runs the discrete-event simulator against the wall
// clock so protocol timers (heartbeats, retry backoffs, gossip rounds) fire
// in real time while the SocketTransport carries the messages.
//
// The mapping is linear: sim time advances time_scale-times slower than
// wall time (time_scale = 1 means one sim-second per wall-second). Each
// loop iteration runs every due simulator event, then pumps socket I/O
// with a poll timeout bounded by the next timer deadline — so the process
// sleeps in poll() and wakes for whichever comes first, a frame or a
// timer. Inbound handlers schedule follow-up events as usual; they run on
// the next iteration.
//
// sim::Simulator::run_until advances now() to the target even when the
// queue drains, which is exactly what keeps sim time glued to the wall
// here.
#pragma once

#include <chrono>

#include "net/socket_transport.hpp"
#include "sim/simulator.hpp"

namespace p2prm::net {

class RealtimeDriver {
 public:
  RealtimeDriver(sim::Simulator& sim, SocketTransport& transport,
                 double time_scale);

  // Runs until sim time `until` (wall time ~ (until - start) * time_scale).
  void run_until(util::SimTime until);

  // Lingers up to `wall_ms`, pumping I/O at the frozen sim time, so final
  // outbound frames flush and last inbound reports are processed before a
  // process exits.
  void drain(int wall_ms);

 private:
  using Clock = std::chrono::steady_clock;
  [[nodiscard]] util::SimTime wall_to_sim(Clock::time_point t) const;

  sim::Simulator& sim_;
  SocketTransport& transport_;
  double time_scale_;
  bool started_ = false;
  Clock::time_point wall_epoch_{};
  util::SimTime sim_epoch_ = 0;
};

}  // namespace p2prm::net

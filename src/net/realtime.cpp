#include "net/realtime.hpp"

#include <algorithm>

namespace p2prm::net {

RealtimeDriver::RealtimeDriver(sim::Simulator& sim, SocketTransport& transport,
                               double time_scale)
    : sim_(sim),
      transport_(transport),
      time_scale_(time_scale > 0.0 ? time_scale : 1.0) {}

util::SimTime RealtimeDriver::wall_to_sim(Clock::time_point t) const {
  const auto wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - wall_epoch_)
          .count();
  return sim_epoch_ +
         static_cast<util::SimTime>(static_cast<double>(wall_ns) /
                                    time_scale_);
}

void RealtimeDriver::run_until(util::SimTime until) {
  if (!started_) {
    // The wall epoch anchors at the first run call, not construction, so
    // setup cost (binding listeners, building peers) is not charged to the
    // scenario clock.
    started_ = true;
    wall_epoch_ = Clock::now();
    sim_epoch_ = sim_.now();
  }
  while (sim_.now() < until) {
    const util::SimTime wall_sim = wall_to_sim(Clock::now());
    const util::SimTime target = std::min(until, std::max(wall_sim, sim_.now()));
    if (target > sim_.now()) sim_.run_until(target);
    if (sim_.now() >= until) break;

    // Sleep in poll() until the next simulator timer is due in wall terms,
    // capped at 20ms so connect backoffs and freshly scheduled events stay
    // responsive. Inbound frames wake the poll immediately regardless.
    const util::SimTime next = std::min(until, sim_.next_event_time());
    int timeout_ms = 20;
    if (next != util::kTimeInfinity && next > wall_sim) {
      const double wall_ns =
          static_cast<double>(next - wall_sim) * time_scale_;
      timeout_ms = static_cast<int>(std::min(20.0, wall_ns / 1e6));
    } else if (next <= wall_sim) {
      timeout_ms = 0;  // work is already due; just poll-and-go
    }
    transport_.pump(std::max(0, timeout_ms));
  }
}

void RealtimeDriver::drain(int wall_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(wall_ms);
  while (Clock::now() < deadline) {
    transport_.pump(5);
    // Handlers triggered by late frames may schedule immediate follow-ups
    // (acks); run anything due at the frozen clock.
    sim_.run_until(sim_.now());
    if (transport_.flushed() && sim_.idle()) {
      // Nothing left to write and nothing queued: linger a little for
      // stragglers, then leave early.
      transport_.pump(50);
      if (transport_.flushed()) return;
    }
  }
}

}  // namespace p2prm::net

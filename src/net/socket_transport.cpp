#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/message.hpp"
#include "util/logging.hpp"

namespace p2prm::net {

namespace {

constexpr const char* kLog = "net";

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// TCP self-connect detection: connecting to a not-yet-bound loopback port
// inside the ephemeral range can complete as a simultaneous open to our
// own ephemeral port. The "link" then swallows every frame. Treat it as a
// failed connect so the backoff path retries toward the real listener.
bool self_connected(int fd) {
  sockaddr_in local{}, remote{};
  socklen_t ll = sizeof local, rl = sizeof remote;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &ll) != 0) {
    return false;
  }
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&remote), &rl) != 0) {
    return false;
  }
  return local.sin_port == remote.sin_port &&
         local.sin_addr.s_addr == remote.sin_addr.s_addr;
}

}  // namespace

SocketTransport::SocketTransport(SocketConfig config, Decoder decoder)
    : config_(std::move(config)), decoder_(decoder) {}

SocketTransport::~SocketTransport() {
  for (auto& [id, ep] : endpoints_) close_fd(ep.listen_fd);
  for (auto& [id, s] : sessions_) close_fd(s.fd);
  for (auto& in : inbound_) close_fd(in.fd);
}

std::uint16_t SocketTransport::port_of(util::PeerId peer) const {
  const std::uint64_t port = config_.base_port + peer.value();
  if (port > 65535) {
    throw std::runtime_error("peer id " + util::to_string(peer) +
                             " maps past port 65535; lower base_port");
  }
  return static_cast<std::uint16_t>(port);
}

void SocketTransport::attach(util::PeerId peer, LinkCapacity /*capacity*/,
                             Handler handler) {
  Endpoint& ep = endpoints_[peer.value()];
  ep.handler = std::move(handler);
  if (ep.listen_fd >= 0) return;  // re-attach (restart): keep the listener

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_of(peer));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad transport host: " + config_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    endpoints_.erase(peer.value());
    throw std::runtime_error("cannot listen on port " +
                             std::to_string(port_of(peer)) + ": " + err);
  }
  set_nonblocking(fd);
  ep.listen_fd = fd;
  P2PRM_LOG(Debug, kLog, -1.0)
      << "peer " << peer << " listening on " << config_.host << ":"
      << port_of(peer);
}

void SocketTransport::detach(util::PeerId peer) {
  auto it = endpoints_.find(peer.value());
  if (it == endpoints_.end()) return;
  close_fd(it->second.listen_fd);
  endpoints_.erase(it);
  // Inbound connections stay open; frames addressed to the detached peer
  // are dropped at dispatch (undeliverable), like the sim's epoch bump.
}

bool SocketTransport::attached(util::PeerId peer) const {
  return endpoints_.contains(peer.value());
}

SocketTransport::Clock::duration SocketTransport::scaled(
    util::SimDuration d) const {
  const double ns = static_cast<double>(d) * config_.time_scale;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
}

SocketTransport::Session& SocketTransport::session_to(util::PeerId to) {
  auto [it, fresh] = sessions_.try_emplace(to.value());
  if (fresh) start_connect(to, it->second);
  return it->second;
}

void SocketTransport::start_connect(util::PeerId to, Session& s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    P2PRM_LOG(Debug, kLog, -1.0)
        << "session to " << to << ": socket() failed: " << strerror(errno);
    fail_session(to, s);
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_of(to));
  ::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    if (self_connected(fd)) {
      ::close(fd);
      P2PRM_LOG(Trace, kLog, -1.0) << "session to " << to << ": self-connect";
      fail_session(to, s);
      return;
    }
    s.fd = fd;
    s.state = LinkState::Connected;
    s.attempt = 0;
  } else if (errno == EINPROGRESS) {
    s.fd = fd;
    s.state = LinkState::Connecting;
  } else {
    const int saved = errno;
    ::close(fd);
    P2PRM_LOG(Trace, kLog, -1.0)
        << "session to " << to << ": connect() failed: " << strerror(saved);
    fail_session(to, s);
  }
}

void SocketTransport::fail_session(util::PeerId to, Session& s) {
  close_fd(s.fd);
  // Everything queued was addressed to a peer we now know is unreachable.
  stats_.messages_undeliverable += s.out_frames;
  P2PRM_LOG(Debug, kLog, -1.0)
      << "session to " << to << " failed (attempt " << s.attempt << ", "
      << s.out_frames << " queued frames dropped)";
  s.out.clear();
  s.out_off = 0;
  s.out_frames = 0;
  s.state = LinkState::Backoff;
  // Past the policy's schedule, keep probing at max_delay: a kill -9'd
  // process may restart, and nothing else would ever reopen the link.
  const int capped =
      std::min(s.attempt, std::max(0, config_.connect.max_attempts - 1));
  s.retry_at = Clock::now() + scaled(config_.connect.delay(capped, &backoff_rng_));
  ++s.attempt;
}

void SocketTransport::send(util::PeerId from, util::PeerId to,
                           MessagePtr message) {
  if (message == nullptr) return;
  const std::string name{message->type_name()};
  ++stats_.messages_sent;
  ++stats_.per_type_count[name];

  // The shim is consulted before any connection state: its verdicts must
  // depend only on (plan, from, to, link_seq), and link_seq counts frames
  // *offered* to the link — backoff and reconnect timing are wall-clock
  // noise that must not perturb the decision stream.
  FrameFaultVerdict verdict;
  if (shim_ != nullptr) {
    if (shim_->severed(from, to)) {
      ++stats_.messages_partitioned;
      return;
    }
    const std::uint64_t seq = link_seq_[{from.value(), to.value()}]++;
    verdict = shim_->on_frame(from, to, seq,
                              message->wire_size() + kFrameCrcBytes);
    if (verdict.drop) {
      ++stats_.messages_fault_dropped;
      return;
    }
  }

  Session& s = session_to(to);
  if (s.state == LinkState::Backoff && Clock::now() >= s.retry_at) {
    start_connect(to, s);
  }

  if (verdict.extra_delay > 0 || verdict.duplicate_after > 0) {
    // Delay/Reorder/Duplicate at TCP granularity: encode to a side buffer
    // and flush from pump() once the deadline passes; later frames on the
    // link overtake the held one.
    HeldFrame held;
    held.from = from;
    held.to = to;
    encode_frame(from, to, *message, held.frame);
    stats_.bytes_sent += held.frame.size();
    stats_.per_type_bytes[name] += held.frame.size();
    const auto now = Clock::now();
    held.release = now + scaled(verdict.extra_delay);
    if (verdict.extra_delay > 0) ++stats_.messages_delayed;
    if (verdict.duplicate_after > 0) {
      HeldFrame copy = held;
      copy.release =
          now + scaled(verdict.extra_delay + verdict.duplicate_after);
      ++stats_.messages_duplicated;
      stats_.bytes_sent += copy.frame.size();
      stats_.per_type_bytes[name] += copy.frame.size();
      held_.push_back(std::move(copy));
    }
    held_.push_back(std::move(held));
    return;
  }

  if (s.state == LinkState::Backoff) {
    ++stats_.messages_undeliverable;
    return;
  }
  const std::size_t queued = s.out.size() - s.out_off;
  const std::size_t before = s.out.size();
  encode_frame(from, to, *message, s.out);
  const std::size_t frame_bytes = s.out.size() - before;
  if (queued + frame_bytes > config_.max_queued_bytes) {
    s.out.resize(before);  // roll the frame back
    ++stats_.messages_undeliverable;
    return;
  }
  ++s.out_frames;
  stats_.bytes_sent += frame_bytes;
  stats_.per_type_bytes[name] += frame_bytes;
}

void SocketTransport::set_fault_shim(FrameFaultShim* shim) {
  shim_ = shim;
  shim_epoch_seen_ = shim != nullptr ? shim->partition_epoch() : 0;
}

void SocketTransport::release_held(Clock::time_point now) {
  for (std::size_t i = 0; i < held_.size();) {
    if (held_[i].release > now) {
      ++i;
      continue;
    }
    HeldFrame held = std::move(held_[i]);
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    // A cut declared while the frame was in the delay queue swallows it —
    // same as a message in flight when the sim partitions.
    if (shim_ != nullptr && shim_->severed(held.from, held.to)) {
      ++stats_.messages_partitioned;
      continue;
    }
    Session& s = session_to(held.to);
    if (s.state == LinkState::Backoff && now >= s.retry_at) {
      start_connect(held.to, s);
    }
    if (s.state == LinkState::Backoff) {
      ++stats_.messages_undeliverable;
      continue;
    }
    if (s.out.size() - s.out_off + held.frame.size() >
        config_.max_queued_bytes) {
      ++stats_.messages_undeliverable;
      continue;
    }
    s.out.insert(s.out.end(), held.frame.begin(), held.frame.end());
    ++s.out_frames;
  }
}

void SocketTransport::apply_partition_resets() {
  // Model the cut as real TCP faults: sessions crossing it are reset
  // (queued frames become undeliverable, reconnects back off) — but only
  // when *every* attached local peer is severed from the remote, because a
  // session is shared by all local senders and resetting a link that
  // still carries permitted traffic would overshoot the plan.
  for (auto& [id, s] : sessions_) {
    if (s.fd < 0) continue;
    bool any_sender = false, all_severed = true;
    for (const auto& [local, ep] : endpoints_) {
      // The remote's own local endpoint (single-process loopback runs) is
      // never a sender on this session and a peer is never severed from
      // itself — it must not veto the reset.
      if (local == id) continue;
      any_sender = true;
      if (!shim_->severed(util::PeerId{local}, util::PeerId{id})) {
        all_severed = false;
        break;
      }
    }
    if (any_sender && all_severed) {
      ++stats_.sessions_reset;
      fail_session(util::PeerId{id}, s);
    }
  }
}

util::SimDuration SocketTransport::estimate_delay(util::PeerId /*a*/,
                                                  util::PeerId /*b*/,
                                                  std::size_t bytes) const {
  // Loopback: flat sub-millisecond latency plus ~1 GbE transmission.
  const double transmit_s = static_cast<double>(bytes) / 125e6;
  return util::microseconds(100) +
         static_cast<util::SimDuration>(transmit_s * 1e9);
}

void SocketTransport::publish(obs::MetricsRegistry& registry,
                              obs::Labels labels) const {
  publish_stats(stats_, registry, std::move(labels));
}

bool SocketTransport::flushed() const {
  if (!held_.empty()) return false;
  for (const auto& [id, s] : sessions_) {
    if (s.state != LinkState::Backoff && s.out.size() > s.out_off) return false;
  }
  return true;
}

void SocketTransport::drain_writes(util::PeerId to, Session& s) {
  while (s.out_off < s.out.size()) {
    const ssize_t n = ::send(s.fd, s.out.data() + s.out_off,
                             s.out.size() - s.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      s.out_off += static_cast<std::size_t>(n);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      P2PRM_LOG(Trace, kLog, -1.0)
          << "session to " << to << ": write failed: " << strerror(errno);
      fail_session(to, s);
      return;
    }
  }
  if (s.out_off == s.out.size()) {
    s.out.clear();
    s.out_off = 0;
    s.out_frames = 0;
  } else if (s.out_off > (1u << 16)) {
    // Compact so the buffer does not grow without bound under backpressure.
    s.out.erase(s.out.begin(),
                s.out.begin() + static_cast<std::ptrdiff_t>(s.out_off));
    s.out_off = 0;
  }
}

void SocketTransport::deliver_frame(const std::uint8_t* data, std::size_t len,
                                    std::size_t& delivered) {
  // Integrity gate before any decode: a frame whose CRC-32C trailer does
  // not match is counted and dropped whole — the session stays up, because
  // corruption of one frame says nothing about stream framing.
  if (!frame_crc_ok(data, len)) {
    ++stats_.frames_corrupt;
    return;
  }
  Reader r(data, len - kFrameCrcBytes);
  const FrameHeader h = read_frame_header(r);
  if (!r.ok()) {
    ++stats_.messages_dropped;
    return;
  }
  if (shim_ != nullptr && shim_->severed(h.from, h.to)) {
    // The frame crossed a cut declared while it was in flight (or was sent
    // by a process that had not yet fired the partition event).
    ++stats_.messages_partitioned;
    return;
  }
  auto ep = endpoints_.find(h.to.value());
  if (ep == endpoints_.end()) {
    // Local peer left/crashed between the remote's send and our dispatch.
    ++stats_.messages_undeliverable;
    return;
  }
  MessagePtr m = decoder_ != nullptr ? decoder_(h.type, r) : nullptr;
  if (m == nullptr) {
    // Unknown tag or malformed body: a version skew or a corrupt stream.
    // Count and drop; a bad frame must never take the process down.
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  ++delivered;
  ep->second.handler(h.from, *m);
}

bool SocketTransport::read_frames(Inbound& in, std::size_t& delivered) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(in.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      in.buf.insert(in.buf.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      return false;  // EOF or error: remote closed
    }
  }
  std::size_t off = 0;
  while (in.buf.size() - off >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, in.buf.data() + off, sizeof len);
    if (len < kFrameHeaderBytes - 4 + kFrameCrcBytes || len > kMaxFrameBytes) {
      return false;  // corrupt stream: desynced framing, drop the connection
    }
    if (in.buf.size() - off - 4 < len) break;  // frame incomplete
    deliver_frame(in.buf.data() + off + 4, len, delivered);
    off += 4 + len;
  }
  if (off > 0) {
    in.buf.erase(in.buf.begin(), in.buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return true;
}

std::size_t SocketTransport::pump(int timeout_ms) {
  const auto now = Clock::now();
  if (shim_ != nullptr) {
    if (shim_->partition_epoch() != shim_epoch_seen_) {
      shim_epoch_seen_ = shim_->partition_epoch();
      apply_partition_resets();
    }
    release_held(now);
  }
  // Retry sessions whose backoff expired (opportunistically, even with no
  // fresh send: heartbeat traffic depends on the link coming back).
  for (auto& [id, s] : sessions_) {
    if (s.state == LinkState::Backoff && now >= s.retry_at) {
      start_connect(util::PeerId{id}, s);
    }
  }

  std::vector<pollfd> fds;
  // Index maps from fds[] position back to the owning object.
  enum class Kind { Listener, Session, Inbound };
  struct Ref {
    Kind kind;
    std::uint64_t id;    // endpoint/session key
    std::size_t index;   // inbound index
  };
  std::vector<Ref> refs;
  for (auto& [id, ep] : endpoints_) {
    if (ep.listen_fd < 0) continue;
    fds.push_back({ep.listen_fd, POLLIN, 0});
    refs.push_back({Kind::Listener, id, 0});
  }
  for (auto& [id, s] : sessions_) {
    if (s.fd < 0) continue;
    short events = 0;
    if (s.state == LinkState::Connecting) events = POLLOUT;
    if (s.state == LinkState::Connected && s.out_off < s.out.size()) {
      events = POLLOUT;
    }
    if (events == 0) continue;
    fds.push_back({s.fd, events, 0});
    refs.push_back({Kind::Session, id, 0});
  }
  for (std::size_t i = 0; i < inbound_.size(); ++i) {
    fds.push_back({inbound_[i].fd, POLLIN, 0});
    refs.push_back({Kind::Inbound, 0, i});
  }

  if (fds.empty()) return 0;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  std::size_t delivered = 0;
  if (ready <= 0) return 0;

  std::vector<std::size_t> dead_inbound;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    const Ref ref = refs[i];
    switch (ref.kind) {
      case Kind::Listener: {
        auto it = endpoints_.find(ref.id);
        if (it == endpoints_.end()) break;
        for (;;) {
          const int cfd = ::accept(it->second.listen_fd, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          set_nodelay(cfd);
          inbound_.push_back(Inbound{cfd, {}});
        }
        break;
      }
      case Kind::Session: {
        auto it = sessions_.find(ref.id);
        if (it == sessions_.end()) break;
        Session& s = it->second;
        if (s.state == LinkState::Connecting) {
          int err = 0;
          socklen_t len = sizeof err;
          ::getsockopt(s.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0 || (fds[i].revents & (POLLERR | POLLHUP)) != 0 ||
              self_connected(s.fd)) {
            P2PRM_LOG(Trace, kLog, -1.0)
                << "session to " << util::PeerId{ref.id} << " (port "
                << port_of(util::PeerId{ref.id})
                << "): async connect failed: " << strerror(err);
            fail_session(util::PeerId{ref.id}, s);
            break;
          }
          s.state = LinkState::Connected;
          s.attempt = 0;
        }
        if (s.state == LinkState::Connected) drain_writes(util::PeerId{ref.id}, s);
        break;
      }
      case Kind::Inbound: {
        Inbound& in = inbound_[ref.index];
        if ((fds[i].revents & POLLNVAL) != 0 ||
            !read_frames(in, delivered)) {
          dead_inbound.push_back(ref.index);
        }
        break;
      }
    }
  }
  // Remove dead inbound connections (descending index keeps indices valid).
  std::sort(dead_inbound.rbegin(), dead_inbound.rend());
  for (const std::size_t idx : dead_inbound) {
    close_fd(inbound_[idx].fd);
    inbound_.erase(inbound_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return delivered;
}

}  // namespace p2prm::net

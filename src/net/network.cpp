#include "net/network.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace p2prm::net {

Network::Network(sim::Simulator& simulator, Topology& topology,
                 double drop_probability)
    : sim_(simulator),
      topology_(topology),
      drop_probability_(drop_probability),
      rng_(simulator.rng().fork()) {
  // 1.0 is a legitimate (if brutal) fault configuration: drop everything.
  if (drop_probability_ < 0.0 || drop_probability_ > 1.0) {
    throw std::invalid_argument("Network: drop_probability must be in [0,1]");
  }
}

void Network::attach(util::PeerId peer, LinkCapacity capacity, Handler handler) {
  if (!topology_.contains(peer)) {
    throw std::logic_error("Network::attach: peer not placed in topology");
  }
  auto& ep = endpoints_[peer];
  ep.capacity = capacity;
  ep.handler = std::move(handler);
  ++ep.epoch;
}

void Network::detach(util::PeerId peer) {
  const auto it = endpoints_.find(peer);
  if (it == endpoints_.end()) return;
  ++it->second.epoch;     // orphan in-flight deliveries
  it->second.handler = nullptr;
}

bool Network::attached(util::PeerId peer) const {
  const auto it = endpoints_.find(peer);
  return it != endpoints_.end() && it->second.handler != nullptr;
}

void Network::set_partition(
    const std::vector<std::vector<util::PeerId>>& groups) {
  islands_.clear();
  int island = 1;
  for (const auto& group : groups) {
    for (const auto peer : group) islands_[peer] = island;
    ++island;
  }
  if (islands_.empty()) {
    // set_partition({}) would otherwise read as "no partition"; treat it as
    // a no-op heal for clarity.
    return;
  }
}

void Network::heal_partition() { islands_.clear(); }

bool Network::can_reach(util::PeerId a, util::PeerId b) const {
  if (islands_.empty() || a == b) return true;
  const auto ia = islands_.find(a);
  const auto ib = islands_.find(b);
  const int ga = ia == islands_.end() ? 0 : ia->second;
  const int gb = ib == islands_.end() ? 0 : ib->second;
  return ga == gb;
}

util::SimDuration Network::estimate_delay(util::PeerId a, util::PeerId b,
                                          std::size_t bytes) const {
  if (a == b) return 0;
  const auto ia = endpoints_.find(a);
  const auto ib = endpoints_.find(b);
  double bottleneck = 1.25e6;
  if (ia != endpoints_.end() && ib != endpoints_.end()) {
    bottleneck = std::min(ia->second.capacity.uplink_bytes_per_s,
                          ib->second.capacity.downlink_bytes_per_s);
  }
  const double tx_s =
      static_cast<double>(bytes + kEnvelopeBytes) / std::max(bottleneck, 1.0);
  return topology_.latency(a, b) + util::from_seconds(tx_s);
}

void Network::send(util::PeerId from, util::PeerId to, MessagePtr message) {
  if (!message) throw std::invalid_argument("Network::send: null message");
  const std::size_t bytes = message->wire_size() + kEnvelopeBytes;
  const std::string type(message->type_name());

  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  ++stats_.per_type_count[type];
  stats_.per_type_bytes[type] += bytes;

  if (!attached(to)) {
    ++stats_.messages_undeliverable;
    return;
  }
  if (!can_reach(from, to)) {
    ++stats_.messages_partitioned;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_)) {
    ++stats_.messages_dropped;
    return;
  }

  util::SimDuration delay;
  if (from == to) {
    delay = 0;
  } else {
    const auto& recv = endpoints_.at(to).capacity;
    double bottleneck = recv.downlink_bytes_per_s;
    const auto is = endpoints_.find(from);
    if (is != endpoints_.end()) {
      bottleneck = std::min(bottleneck, is->second.capacity.uplink_bytes_per_s);
    }
    const double tx_s = static_cast<double>(bytes) / std::max(bottleneck, 1.0);
    // FIFO uplink: transmission starts once earlier sends have drained the
    // sender's interface, so concurrent streams genuinely contend.
    util::SimDuration queue_wait = 0;
    if (is != endpoints_.end()) {
      auto& uplink_free_at = is->second.uplink_free_at;
      const util::SimTime start = std::max(sim_.now(), uplink_free_at);
      queue_wait = start - sim_.now();
      uplink_free_at = start + util::from_seconds(tx_s);
    }
    delay = queue_wait + util::from_seconds(tx_s) +
            topology_.latency_jittered(from, to, rng_);
  }
  // Even local sends must not run inline: handlers assume asynchronous
  // delivery (and may send during their own construction).
  delay = std::max<util::SimDuration>(delay, 1);

  FaultDecision fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->on_send(from, to, bytes, type);
  }
  if (fault.drop) {
    ++stats_.messages_fault_dropped;
    return;
  }
  if (fault.extra_delay > 0) {
    ++stats_.messages_delayed;
    delay += fault.extra_delay;
  }

  auto shared = std::shared_ptr<Message>(std::move(message));
  schedule_delivery(from, to, delay, shared);
  if (fault.duplicate_after > 0) {
    ++stats_.messages_duplicated;
    schedule_delivery(from, to, delay + fault.duplicate_after, shared);
  }
}

void Network::schedule_delivery(util::PeerId from, util::PeerId to,
                                util::SimDuration delay,
                                const std::shared_ptr<Message>& message) {
  const std::uint64_t epoch = endpoints_.at(to).epoch;
  // Affinity-routed: under the parallel engine the delivery event lands on
  // the receiver's shard (the sender-side latency floor is what makes the
  // cross-shard lookahead conservative).
  sim_.schedule_after(
      delay,
      [this, from, to, epoch, message] {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end() || it->second.epoch != epoch ||
            !it->second.handler) {
          ++stats_.messages_undeliverable;
          return;
        }
        ++stats_.messages_delivered;
        it->second.handler(from, *message);
      },
      to);
}

void Network::publish(obs::MetricsRegistry& registry,
                      obs::Labels labels) const {
  publish_stats(stats_, registry, std::move(labels));
}

}  // namespace p2prm::net

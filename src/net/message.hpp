// Base type for every protocol message in the middleware.
//
// Concrete message structs live in the modules that own the protocol
// (overlay join, profiler reports, task queries, gossip digests, ...).
// Each message reports a wire size so the network can model transmission
// delay and the experiments can account control-plane overhead in bytes,
// and a type name for per-type traffic statistics.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "util/ids.hpp"

namespace p2prm::net {

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes (headers included). Used for transmission
  // delay and traffic accounting; it does not need to match any real codec,
  // only to scale with the information carried.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  // Stable name used as the statistics key, e.g. "overlay.join_request".
  [[nodiscard]] virtual std::string_view type_name() const = 0;
};

using MessagePtr = std::unique_ptr<Message>;

// Fixed per-message envelope overhead added to every wire_size().
inline constexpr std::size_t kEnvelopeBytes = 40;

// Downcast helper: returns nullptr when the runtime type differs.
template <typename T>
[[nodiscard]] const T* message_cast(const Message& m) {
  return dynamic_cast<const T*>(&m);
}

}  // namespace p2prm::net

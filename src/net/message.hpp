// Base type for every protocol message in the middleware.
//
// Concrete message structs live in the modules that own the protocol
// (overlay join, profiler reports, task queries, gossip digests, ...).
// Each message carries:
//   - a stable WireType tag (net/wire.hpp) used for dispatch and framing,
//   - a binary codec (encode_body + a static decode in its own module),
//   - a wire size equal to its encoded frame size, used for transmission
//     delay and traffic accounting,
//   - a type name for per-type traffic statistics.
//
// Handlers dispatch on the tag via message_as<T> — no RTTI. The decode
// registry (tag -> decoder, with the compile-time tag-uniqueness check)
// lives in core/wire_registry.{hpp,cpp}.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "net/codec.hpp"
#include "net/wire.hpp"
#include "util/ids.hpp"

namespace p2prm::net {

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes: kFrameHeaderBytes plus the encoded body.
  // Must match encode_frame()'s output exactly (tests/codec_test.cpp);
  // the sim Network and the socket transport account the same bytes.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  // Stable name used as the statistics key, e.g. "overlay.join_request".
  [[nodiscard]] virtual std::string_view type_name() const = 0;

  // Stable wire tag (each concrete type also exposes it as `kType`).
  [[nodiscard]] virtual WireType wire_type() const = 0;

  // Serializes the body (everything after the frame header) into `w`.
  virtual void encode_body(Writer& w) const = 0;
};

using MessagePtr = std::unique_ptr<Message>;

// Fixed per-message envelope overhead added to every wire_size() by the
// transports (TCP/IP-ish framing the codec does not model).
inline constexpr std::size_t kEnvelopeBytes = 40;

// Tag-dispatch downcast: returns nullptr when the wire type differs.
// T must be a concrete message type exposing `static constexpr WireType
// kType`. Replaces the old dynamic_cast-based message_cast.
template <typename T>
[[nodiscard]] const T* message_as(const Message& m) {
  return m.wire_type() == T::kType ? static_cast<const T*>(&m) : nullptr;
}

}  // namespace p2prm::net

// Physical placement and latency model.
//
// Peers are placed on a 2D plane; propagation latency grows linearly with
// euclidean distance plus a per-path base. Peers that are physically close
// therefore see low mutual latency — this is the "topological proximity"
// that the paper's geographical domains are built from (§2, §4.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/flat_map.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace p2prm::net {

struct Coordinates {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance(Coordinates a, Coordinates b);

struct TopologyConfig {
  double world_size = 1000.0;       // side of the square world (abstract km)
  double base_latency_s = 0.001;    // per-path floor (1 ms)
  double latency_per_unit_s = 2e-6; // 2 us per km -> ~2 ms across the world
  double jitter_fraction = 0.0;     // +- fraction of the deterministic latency
  int cluster_count = 0;            // 0: uniform placement; >0: gaussian clusters
  double cluster_stddev = 40.0;     // spread of each cluster
};

// Owns peer coordinates and answers latency queries. Placement is either
// uniform or clustered (clusters model metropolitan areas, giving the
// domain-formation logic real proximity structure to exploit).
class Topology {
 public:
  explicit Topology(TopologyConfig config = {});

  // Draws placement coordinates without registering the peer. Lazy peers
  // (docs/SCALING.md) keep their draw in the flat registry row and only
  // enter the topology when they materialize, so the coordinate table
  // scales with the *materialized* population.
  Coordinates draw(util::Rng& rng);
  // Places a peer (clustered placement draws the cluster first).
  Coordinates place(util::PeerId peer, util::Rng& rng);
  // Places at explicit coordinates (tests, reproducing figures).
  void place_at(util::PeerId peer, Coordinates c);
  void remove(util::PeerId peer);

  [[nodiscard]] bool contains(util::PeerId peer) const;
  [[nodiscard]] Coordinates coordinates(util::PeerId peer) const;

  // One-way propagation latency. Deterministic unless jitter is configured,
  // in which case `rng` perturbs each query independently.
  [[nodiscard]] util::SimDuration latency(util::PeerId a, util::PeerId b) const;
  [[nodiscard]] util::SimDuration latency_jittered(util::PeerId a,
                                                   util::PeerId b,
                                                   util::Rng& rng) const;

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  [[nodiscard]] std::size_t size() const { return coords_.size(); }

  // Lower bound on any peer-to-peer latency: the per-path base floor,
  // shrunk by the worst-case downward jitter. The parallel engine uses it
  // as the conservative lookahead — no cross-shard message can arrive
  // sooner, so shards may safely advance through windows of this width
  // (docs/PARALLELISM.md).
  [[nodiscard]] util::SimDuration min_latency() const {
    return latency_floor(0.0);
  }

  // Lower bound on the latency of any peer pair at least `min_distance`
  // apart: the deterministic linear model evaluated at that distance,
  // shrunk by the worst-case downward jitter. This is what turns a
  // shard-to-shard bounding-box distance into a per-pair lookahead: two
  // shards whose peers are far apart cannot exchange a message faster than
  // this, so their conservative windows may be that much wider.
  [[nodiscard]] util::SimDuration latency_floor(double min_distance) const {
    double worst =
        config_.base_latency_s + min_distance * config_.latency_per_unit_s;
    if (config_.jitter_fraction > 0.0) {
      worst *= 1.0 - std::min(config_.jitter_fraction, 1.0);
    }
    const util::SimDuration floor = util::from_seconds(worst);
    return floor > 0 ? floor : 1;
  }

 private:
  void ensure_clusters(util::Rng& rng);

  TopologyConfig config_;
  // Open-addressing map: latency() sits on the message hot path (two
  // lookups per send). Never iterated, so slot order is unobservable.
  util::FlatMap<util::PeerId, Coordinates> coords_;
  std::vector<Coordinates> cluster_centers_;
};

}  // namespace p2prm::net

#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2prm::net {

double distance(Coordinates a, Coordinates b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology::Topology(TopologyConfig config) : config_(config) {
  if (config_.world_size <= 0.0) {
    throw std::invalid_argument("Topology: world_size must be positive");
  }
}

void Topology::ensure_clusters(util::Rng& rng) {
  if (config_.cluster_count <= 0 || !cluster_centers_.empty()) return;
  cluster_centers_.reserve(static_cast<std::size_t>(config_.cluster_count));
  for (int i = 0; i < config_.cluster_count; ++i) {
    cluster_centers_.push_back(Coordinates{
        rng.uniform(0.0, config_.world_size),
        rng.uniform(0.0, config_.world_size),
    });
  }
}

Coordinates Topology::draw(util::Rng& rng) {
  Coordinates c;
  if (config_.cluster_count > 0) {
    ensure_clusters(rng);
    const auto& center =
        cluster_centers_[rng.below(cluster_centers_.size())];
    c.x = std::clamp(center.x + rng.normal(0.0, config_.cluster_stddev), 0.0,
                     config_.world_size);
    c.y = std::clamp(center.y + rng.normal(0.0, config_.cluster_stddev), 0.0,
                     config_.world_size);
  } else {
    c.x = rng.uniform(0.0, config_.world_size);
    c.y = rng.uniform(0.0, config_.world_size);
  }
  return c;
}

Coordinates Topology::place(util::PeerId peer, util::Rng& rng) {
  const Coordinates c = draw(rng);
  coords_[peer] = c;
  return c;
}

void Topology::place_at(util::PeerId peer, Coordinates c) { coords_[peer] = c; }

void Topology::remove(util::PeerId peer) { coords_.erase(peer); }

bool Topology::contains(util::PeerId peer) const {
  return coords_.contains(peer);
}

Coordinates Topology::coordinates(util::PeerId peer) const {
  const Coordinates* c = coords_.find(peer);
  if (c == nullptr) {
    throw std::out_of_range("Topology: unknown peer " + util::to_string(peer));
  }
  return *c;
}

util::SimDuration Topology::latency(util::PeerId a, util::PeerId b) const {
  if (a == b) return 0;
  // A peer demoted back to a lazy registry row keeps its coordinates in
  // the row, not here (the table stays O(materialized)). An in-flight
  // estimate can still name such a peer — the RM's LeaveNotice is
  // asynchronous — so degrade to the conservative worst case (the world
  // diagonal) instead of throwing. Unreachable before demotion existed:
  // leave/crash never removed coordinates.
  const Coordinates* ca = coords_.find(a);
  const Coordinates* cb = coords_.find(b);
  const double d = (ca != nullptr && cb != nullptr)
                       ? distance(*ca, *cb)
                       : config_.world_size * std::sqrt(2.0);
  const double s = config_.base_latency_s + d * config_.latency_per_unit_s;
  return util::from_seconds(s);
}

util::SimDuration Topology::latency_jittered(util::PeerId a, util::PeerId b,
                                             util::Rng& rng) const {
  const util::SimDuration base = latency(a, b);
  if (config_.jitter_fraction <= 0.0) return base;
  const double f = rng.uniform(-config_.jitter_fraction, config_.jitter_fraction);
  const auto jittered =
      static_cast<util::SimDuration>(static_cast<double>(base) * (1.0 + f));
  return std::max<util::SimDuration>(jittered, 0);
}

}  // namespace p2prm::net

// The frame-granularity fault interface of the socket transport.
//
// net::SocketTransport consults an installed FrameFaultShim on every
// outbound frame (drop/delay/duplicate verdicts) and on every inbound
// dispatch (active partition cuts), and watches partition_epoch() to reset
// TCP sessions that cross a freshly declared cut — the socket-mode
// equivalent of the sim Network's FaultHook + set_partition().
//
// The interface lives in net (below fault in the layering) so the
// transport needs no fault dependency; the production implementation is
// fault::FrameShim (src/fault/frame_shim.hpp), which executes a
// fault::FaultPlan. Determinism contract: on_frame() must be a pure
// function of (plan, from, to, link_seq) — never of wall time or call
// order across links — so every process of a deployment, each seeing only
// its own traffic, makes identical per-frame decisions, and two runs of
// the same seed produce identical decision logs for identical frame
// sequences. See docs/TRANSPORT.md ("Socket-mode fault injection").
#pragma once

#include <cstdint>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::net {

// One verdict per outbound frame (mirrors net::FaultDecision, at frame
// rather than message granularity).
struct FrameFaultVerdict {
  bool drop = false;
  // Hold the frame back this long (sim time, scaled to wall time by the
  // transport) before flushing it — Delay/Jitter/Reorder at TCP
  // granularity. Later frames on the link overtake it.
  util::SimDuration extra_delay = 0;
  // When > 0, flush a second copy of the frame this long after the first.
  util::SimDuration duplicate_after = 0;
};

class FrameFaultShim {
 public:
  virtual ~FrameFaultShim() = default;

  // Verdict for the link_seq-th frame ever sent on the ordered (from, to)
  // link. `bytes` is the full frame size (header + body + trailer).
  virtual FrameFaultVerdict on_frame(util::PeerId from, util::PeerId to,
                                     std::uint64_t link_seq,
                                     std::size_t bytes) = 0;

  // True when an active scheduled partition separates a and b (islands as
  // in net::Network::set_partition). Consulted on send and on dispatch.
  [[nodiscard]] virtual bool severed(util::PeerId a, util::PeerId b) const = 0;

  // Bumped on every partition start/heal. The transport polls it each
  // pump() and resets the TCP sessions that cross a new cut.
  [[nodiscard]] virtual std::uint64_t partition_epoch() const = 0;
};

}  // namespace p2prm::net

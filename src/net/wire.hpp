// Stable wire-type tags and the frame format of the socket transport.
//
// Every concrete net::Message carries a WireType tag — a stable u16 that
// identifies the codec on the wire and replaces RTTI dispatch in message
// handlers (net::message_as<T> compares tags instead of dynamic_cast).
//
// Frame layout (little-endian), as produced by encode_frame():
//
//   [u32 length][u64 from][u64 to][u16 tag][body...]
//
// `length` counts everything after itself (from, to, tag, body), so a
// stream reader needs exactly 4 bytes before it knows how much to buffer.
// Message::wire_size() == the full frame size (kFrameHeaderBytes + body),
// which keeps the simulator's traffic accounting byte-identical to what
// the socket transport actually transmits.
//
// Tag ranges (gaps left for growth; values are wire-stable, never reuse):
//   0x0001 - 0x001F  overlay membership protocol
//   0x0020 - 0x005F  core task / feedback / backup protocol
//   0x0060 - 0x007F  gossip
//   0x7F00 - 0x7FFF  reserved for test-local messages (never shipped)
//
// The full production registry — with the compile-time uniqueness check —
// lives in core/wire_registry.{hpp,cpp}, above every module that defines
// messages; the net layer only knows the enum and the frame shape.
#pragma once

#include <cstdint>

#include "net/codec.hpp"
#include "util/ids.hpp"

namespace p2prm::net {

enum class WireType : std::uint16_t {
  Invalid = 0x0000,

  // overlay/membership.hpp
  JoinRequest = 0x0001,
  JoinRedirect = 0x0002,
  JoinAccept = 0x0003,
  JoinPromote = 0x0004,
  LeaveNotice = 0x0005,
  RmHeartbeat = 0x0006,
  RmTakeover = 0x0007,
  RmPeerIntro = 0x0008,

  // core/messages.hpp
  PeerAnnounce = 0x0020,
  TaskQuery = 0x0021,
  TaskReject = 0x0022,
  TaskAccept = 0x0023,
  GraphCompose = 0x0024,
  SourceStart = 0x0025,
  StreamData = 0x0026,
  HopDone = 0x0027,
  TaskCompleted = 0x0028,
  TaskFailed = 0x0029,
  HopFailed = 0x002A,
  ProfilerReport = 0x002B,
  ReportAck = 0x002C,
  HopCancel = 0x002D,
  TaskQosUpdate = 0x002E,

  // core/info_base.hpp
  BackupSync = 0x0040,
  BackupSyncAck = 0x0041,

  // gossip/gossip_engine.hpp
  GossipSummaries = 0x0060,

  // Test-local range (tests define tags here; never registered, never on a
  // production wire).
  TestBase = 0x7F00,
};

// [u32 length][u64 from][u64 to][u16 tag] — prepended to every body.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 8 + 2;
// Largest frame the socket transport will accept before declaring the
// stream corrupt. Generous: the biggest real frames are BackupSync
// snapshots and StreamData payloads (tens of MB of modelled media).
inline constexpr std::size_t kMaxFrameBytes = 256u << 20;

class Message;

// Addressing header of one decoded frame.
struct FrameHeader {
  util::PeerId from;
  util::PeerId to;
  WireType type = WireType::Invalid;
};

// Serializes a full frame (header + tag + body). The result's size equals
// message.wire_size() — enforced by the codec round-trip test.
void encode_frame(util::PeerId from, util::PeerId to, const Message& message,
                  std::vector<std::uint8_t>& out);

// Parses the 18-byte post-length header (from/to/tag) and positions `r` at
// the body. `r` must span the frame *after* the u32 length prefix.
[[nodiscard]] FrameHeader read_frame_header(Reader& r);

}  // namespace p2prm::net

// Stable wire-type tags and the frame format of the socket transport.
//
// Every concrete net::Message carries a WireType tag — a stable u16 that
// identifies the codec on the wire and replaces RTTI dispatch in message
// handlers (net::message_as<T> compares tags instead of dynamic_cast).
//
// Frame layout (little-endian), as produced by encode_frame():
//
//   [u32 length][u64 from][u64 to][u16 tag][body...][u32 crc]
//
// `length` counts everything after itself (from, to, tag, body, crc), so a
// stream reader needs exactly 4 bytes before it knows how much to buffer.
// The trailer is the CRC-32C (util/crc32c.hpp) of everything between the
// length prefix and the trailer; a receiver verifies it before attempting
// any decode, counts mismatches (net.socket.corrupt) and drops the frame
// while keeping the connection alive.
//
// Frame format version 2 (version 1 had no trailer). The bump is a
// socket-wire concern only and is NOT reflected in Message::wire_size():
// wire_size() == kFrameHeaderBytes + body, exactly as in v1, so the
// simulator's traffic accounting — and every golden trace and digest
// recorded against it — is unchanged. The sim transport never frames
// messages at all; on a real socket the 4-byte trailer rides inside the
// per-message envelope allowance (net::kEnvelopeBytes) that already
// stands in for unmodelled framing overhead. All processes of one
// deployment run the same binary (the plan is rebuilt from one seed), so
// the version is negotiated by construction rather than on the wire.
//
// Tag ranges (gaps left for growth; values are wire-stable, never reuse):
//   0x0001 - 0x001F  overlay membership protocol
//   0x0020 - 0x005F  core task / feedback / backup protocol
//   0x0060 - 0x007F  gossip
//   0x7F00 - 0x7FFF  reserved for test-local messages (never shipped)
//
// The full production registry — with the compile-time uniqueness check —
// lives in core/wire_registry.{hpp,cpp}, above every module that defines
// messages; the net layer only knows the enum and the frame shape.
#pragma once

#include <cstdint>

#include "net/codec.hpp"
#include "util/ids.hpp"

namespace p2prm::net {

enum class WireType : std::uint16_t {
  Invalid = 0x0000,

  // overlay/membership.hpp
  JoinRequest = 0x0001,
  JoinRedirect = 0x0002,
  JoinAccept = 0x0003,
  JoinPromote = 0x0004,
  LeaveNotice = 0x0005,
  RmHeartbeat = 0x0006,
  RmTakeover = 0x0007,
  RmPeerIntro = 0x0008,

  // core/messages.hpp
  PeerAnnounce = 0x0020,
  TaskQuery = 0x0021,
  TaskReject = 0x0022,
  TaskAccept = 0x0023,
  GraphCompose = 0x0024,
  SourceStart = 0x0025,
  StreamData = 0x0026,
  HopDone = 0x0027,
  TaskCompleted = 0x0028,
  TaskFailed = 0x0029,
  HopFailed = 0x002A,
  ProfilerReport = 0x002B,
  ReportAck = 0x002C,
  HopCancel = 0x002D,
  TaskQosUpdate = 0x002E,

  // core/info_base.hpp
  BackupSync = 0x0040,
  BackupSyncAck = 0x0041,

  // gossip/gossip_engine.hpp
  GossipSummaries = 0x0060,

  // Test-local range (tests define tags here; never registered, never on a
  // production wire).
  TestBase = 0x7F00,
};

// [u32 length][u64 from][u64 to][u16 tag] — prepended to every body.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 8 + 2;
// [u32 crc] — CRC-32C trailer appended after every body (frame format v2).
inline constexpr std::size_t kFrameCrcBytes = 4;
// Socket frame format version. v1: no trailer. v2: CRC-32C trailer.
inline constexpr std::uint32_t kFrameVersion = 2;
// Largest frame the socket transport will accept before declaring the
// stream corrupt. Generous: the biggest real frames are BackupSync
// snapshots and StreamData payloads (tens of MB of modelled media).
inline constexpr std::size_t kMaxFrameBytes = 256u << 20;

class Message;

// Addressing header of one decoded frame.
struct FrameHeader {
  util::PeerId from;
  util::PeerId to;
  WireType type = WireType::Invalid;
};

// Serializes a full frame (header + tag + body + crc trailer). The result's
// size equals message.wire_size() + kFrameCrcBytes — enforced by the codec
// round-trip test (wire_size() itself excludes the trailer; see above).
void encode_frame(util::PeerId from, util::PeerId to, const Message& message,
                  std::vector<std::uint8_t>& out);

// Verifies the CRC-32C trailer of one frame. `post_len` spans the frame
// *after* the u32 length prefix (`len` bytes: from/to/tag/body/crc).
// Returns false for frames too short to carry a trailer.
[[nodiscard]] bool frame_crc_ok(const std::uint8_t* post_len, std::size_t len);

// Parses the 18-byte post-length header (from/to/tag) and positions `r` at
// the body. `r` must span the frame *after* the u32 length prefix; callers
// that received the frame off a socket must check frame_crc_ok() first and
// exclude the trailer from the Reader's span.
[[nodiscard]] FrameHeader read_frame_header(Reader& r);

}  // namespace p2prm::net

// Message-level overlay transport on top of the simulator.
//
// The sim backend of net::Transport (see net/transport.hpp). Delivery
// delay = propagation latency (Topology) + transmission delay (wire size
// over the bottleneck of sender uplink / receiver downlink). Messages to
// detached (failed / departed) peers are silently dropped — exactly the
// failure signal the paper's RMs and backup RMs react to. All control-
// plane traffic is accounted per message type so experiments can report
// protocol overhead. Partition injection and the fault hook are sim-only
// extras beyond the Transport contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/message.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace p2prm::net {

// What a fault-injection layer may do to one message send. The hook is
// consulted once per send, after partition filtering; the network applies
// the verdict mechanically so all fault randomness stays inside the hook
// (where it is driven by the fault plan's own seeded RNG).
struct FaultDecision {
  bool drop = false;
  // Extra one-way delay added on top of the modelled latency. Large values
  // past other traffic's delivery times produce reordering.
  util::SimDuration extra_delay = 0;
  // Deliver one duplicate copy this much after the original (0 = none).
  util::SimDuration duplicate_after = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual FaultDecision on_send(util::PeerId from, util::PeerId to,
                                std::size_t bytes,
                                std::string_view type) = 0;
};

class Network final : public Transport {
 public:
  Network(sim::Simulator& simulator, Topology& topology,
          double drop_probability = 0.0);

  // Attach a peer endpoint. The handler runs at delivery time. A peer must
  // already be placed in the topology.
  void attach(util::PeerId peer, LinkCapacity capacity,
              Handler handler) override;
  // Detach (departure or crash): pending deliveries to this peer vanish.
  void detach(util::PeerId peer) override;
  [[nodiscard]] bool attached(util::PeerId peer) const override;

  // Fire-and-forget unicast. Ownership of the message transfers; delivery
  // (if any) happens strictly after `now`.
  void send(util::PeerId from, util::PeerId to, MessagePtr message) override;

  // --- partition injection ("dynamic environments", failure testing) ------
  // Splits the network: peers listed in `groups[i]` form island i+1; every
  // unlisted peer is in island 0. Messages between different islands are
  // silently lost until heal_partition(). Messages already in flight when
  // the partition starts still arrive (they were on the wire).
  void set_partition(const std::vector<std::vector<util::PeerId>>& groups);
  // Convenience: cut the listed peers off from everyone else.
  void isolate(const std::vector<util::PeerId>& peers) { set_partition({peers}); }
  void heal_partition();
  [[nodiscard]] bool partition_active() const { return !islands_.empty(); }
  [[nodiscard]] bool can_reach(util::PeerId a, util::PeerId b) const;

  // --- fault injection (src/fault) ----------------------------------------
  // The hook sees every send and may drop, delay or duplicate it. Not owned;
  // pass nullptr to remove. Loss configured via `drop_probability` composes
  // with (applies before) the hook.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const { return fault_hook_; }

  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }
  // Writes net.* counters (delivery/drop/fault breakdown, bytes, and the
  // per-message-type series labelled {"type": ...}) under `labels`.
  void publish(obs::MetricsRegistry& registry,
               obs::Labels labels = {}) const override;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  // Estimated one-way delay for a message of `bytes` from a to b under the
  // current capacities — what an RM uses to predict communication times
  // when composing a service graph (§3.3). Does not include jitter/loss.
  [[nodiscard]] util::SimDuration estimate_delay(
      util::PeerId a, util::PeerId b, std::size_t bytes) const override;

 private:
  struct Endpoint {
    LinkCapacity capacity;
    Handler handler;
    std::uint64_t epoch = 0;  // bumped on detach to invalidate in-flight msgs
    // FIFO uplink serialization: concurrent sends from one peer share its
    // uplink, so a second stream starts transmitting only when the first
    // has left the interface.
    util::SimTime uplink_free_at = 0;
  };

  void schedule_delivery(util::PeerId from, util::PeerId to,
                         util::SimDuration delay,
                         const std::shared_ptr<Message>& message);

  sim::Simulator& sim_;
  Topology& topology_;
  double drop_probability_;
  FaultHook* fault_hook_ = nullptr;
  util::Rng rng_;
  std::unordered_map<util::PeerId, Endpoint> endpoints_;
  // Peer -> island id; empty map = no partition; unlisted peers are 0.
  std::unordered_map<util::PeerId, int> islands_;
  NetworkStats stats_;
};

}  // namespace p2prm::net

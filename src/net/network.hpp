// Message-level overlay transport on top of the simulator.
//
// Delivery delay = propagation latency (Topology) + transmission delay
// (wire size over the bottleneck of sender uplink / receiver downlink).
// Messages to detached (failed / departed) peers are silently dropped —
// exactly the failure signal the paper's RMs and backup RMs react to.
// All control-plane traffic is accounted per message type so experiments
// can report protocol overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <map>
#include <unordered_map>

#include "net/message.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace p2prm::net {

struct LinkCapacity {
  double uplink_bytes_per_s = 1.25e6;    // ~10 Mbit/s default
  double downlink_bytes_per_s = 1.25e6;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     // random loss
  std::uint64_t messages_partitioned = 0; // blocked by an active partition
  std::uint64_t messages_undeliverable = 0;  // receiver detached
  std::uint64_t bytes_sent = 0;
  // Keyed by Message::type_name(). std::map keeps report output sorted.
  std::map<std::string, std::uint64_t> per_type_count;
  std::map<std::string, std::uint64_t> per_type_bytes;
};

class Network {
 public:
  using Handler =
      std::function<void(util::PeerId from, const Message& message)>;

  Network(sim::Simulator& simulator, Topology& topology,
          double drop_probability = 0.0);

  // Attach a peer endpoint. The handler runs at delivery time. A peer must
  // already be placed in the topology.
  void attach(util::PeerId peer, LinkCapacity capacity, Handler handler);
  // Detach (departure or crash): pending deliveries to this peer vanish.
  void detach(util::PeerId peer);
  [[nodiscard]] bool attached(util::PeerId peer) const;

  // Fire-and-forget unicast. Ownership of the message transfers; delivery
  // (if any) happens strictly after `now`.
  void send(util::PeerId from, util::PeerId to, MessagePtr message);

  // --- partition injection ("dynamic environments", failure testing) ------
  // Splits the network: peers listed in `groups[i]` form island i+1; every
  // unlisted peer is in island 0. Messages between different islands are
  // silently lost until heal_partition(). Messages already in flight when
  // the partition starts still arrive (they were on the wire).
  void set_partition(const std::vector<std::vector<util::PeerId>>& groups);
  // Convenience: cut the listed peers off from everyone else.
  void isolate(const std::vector<util::PeerId>& peers) { set_partition({peers}); }
  void heal_partition();
  [[nodiscard]] bool partition_active() const { return !islands_.empty(); }
  [[nodiscard]] bool can_reach(util::PeerId a, util::PeerId b) const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  // Estimated one-way delay for a message of `bytes` from a to b under the
  // current capacities — what an RM uses to predict communication times
  // when composing a service graph (§3.3). Does not include jitter/loss.
  [[nodiscard]] util::SimDuration estimate_delay(util::PeerId a, util::PeerId b,
                                                 std::size_t bytes) const;

 private:
  struct Endpoint {
    LinkCapacity capacity;
    Handler handler;
    std::uint64_t epoch = 0;  // bumped on detach to invalidate in-flight msgs
    // FIFO uplink serialization: concurrent sends from one peer share its
    // uplink, so a second stream starts transmitting only when the first
    // has left the interface.
    util::SimTime uplink_free_at = 0;
  };

  sim::Simulator& sim_;
  Topology& topology_;
  double drop_probability_;
  util::Rng rng_;
  std::unordered_map<util::PeerId, Endpoint> endpoints_;
  // Peer -> island id; empty map = no partition; unlisted peers are 0.
  std::unordered_map<util::PeerId, int> islands_;
  NetworkStats stats_;
};

}  // namespace p2prm::net

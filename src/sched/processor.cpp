#include "sched/processor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p2prm::sched {

Processor::Processor(sim::Simulator& simulator, ProcessorConfig config,
                     FinishFn on_finish)
    : sim_(simulator),
      config_(config),
      policy_(make_policy(config.policy)),
      on_finish_(std::move(on_finish)) {
  assert(config_.ops_per_second > 0.0);
}

Processor::~Processor() {
  if (pending_event_) sim_.cancel(*pending_event_);
}

void Processor::submit(Job job) {
  if (job.release < sim_.now()) job.release = sim_.now();
  if (job.remaining_ops <= 0.0) job.remaining_ops = job.total_ops;
  ++stats_.submitted;
  settle_running();
  ready_.push_back(job);
  reschedule();
}

bool Processor::cancel(util::JobId id) {
  // Probe before settling: cancelling an unknown job must not disturb the
  // schedule in flight.
  const auto exists = std::any_of(ready_.begin(), ready_.end(),
                                  [&](const Job& j) { return j.id == id; });
  if (!exists) return false;
  settle_running();
  const auto it = std::find_if(ready_.begin(), ready_.end(),
                               [&](const Job& j) { return j.id == id; });
  ready_.erase(it);
  ++stats_.cancelled;
  reschedule();
  return true;
}

void Processor::cancel_all() {
  settle_running();
  stats_.cancelled += ready_.size();
  ready_.clear();
  reschedule();
}

void Processor::set_policy(Policy p) {
  settle_running();
  policy_ = make_policy(p);
  config_.policy = p;
  reschedule();
}

double Processor::backlog_seconds() const {
  double ops = 0.0;
  for (const Job& j : ready_) ops += j.remaining_ops;
  // If a job is mid-slice its remaining_ops is slightly stale (settled only
  // at scheduling points); correct by the elapsed slice time.
  if (running_) {
    const double elapsed_s = util::to_seconds(sim_.now() - slice_start_);
    ops -= elapsed_s * config_.ops_per_second;
  }
  return std::max(ops, 0.0) / config_.ops_per_second;
}

util::SimDuration Processor::busy_time() const {
  util::SimDuration t = stats_.busy_time;
  if (running_) t += sim_.now() - slice_start_;
  return t;
}

util::SimTime Processor::estimate_completion(double ops) const {
  return sim_.now() +
         util::from_seconds(backlog_seconds() + ops / config_.ops_per_second);
}

std::vector<JobLaxity> Processor::laxity_view() const {
  std::vector<JobLaxity> out;
  out.reserve(ready_.size());
  const util::SimTime now = sim_.now();
  for (const Job& j : ready_) {
    const bool is_running = running_ && j.id == *running_;
    Job settled = j;
    if (is_running) {
      // Mid-slice, the running job's remaining_ops is stale (settled only at
      // scheduling points, same correction as backlog_seconds()).
      const double done =
          util::to_seconds(now - slice_start_) * config_.ops_per_second;
      settled.remaining_ops = std::max(0.0, settled.remaining_ops - done);
    }
    out.push_back(JobLaxity{j.id, j.task, is_running,
                            laxity(settled, now, config_.ops_per_second)});
  }
  return out;
}

void Processor::settle_running() {
  if (!running_) return;
  const util::SimDuration elapsed = sim_.now() - slice_start_;
  if (elapsed > 0) {
    const double done_ops = util::to_seconds(elapsed) * config_.ops_per_second;
    for (Job& j : ready_) {
      if (j.id == *running_) {
        j.remaining_ops = std::max(0.0, j.remaining_ops - done_ops);
        break;
      }
    }
    stats_.busy_time += elapsed;
  }
  running_.reset();
  if (pending_event_) {
    sim_.cancel(*pending_event_);
    pending_event_.reset();
  }
}

void Processor::finish(std::size_t index, JobStatus status) {
  Job job = ready_[index];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(index));
  switch (status) {
    case JobStatus::Completed: ++stats_.completed_on_time; break;
    case JobStatus::CompletedLate: ++stats_.completed_late; break;
    case JobStatus::Dropped: ++stats_.dropped; break;
    case JobStatus::Cancelled: ++stats_.cancelled; break;
  }
  if (on_finish_) on_finish_(job, status);
}

void Processor::reschedule() {
  assert(!running_ && !pending_event_);
  ++reschedule_epoch_;

  if (config_.drop_hopeless_jobs) {
    for (std::size_t i = 0; i < ready_.size();) {
      if (laxity(ready_[i], sim_.now(), config_.ops_per_second) < 0 &&
          ready_[i].remaining_ops > 0.0) {
        Job& j = ready_[i];
        j.completed = -1;
        finish(i, JobStatus::Dropped);
      } else {
        ++i;
      }
    }
  }
  if (ready_.empty()) return;

  const std::size_t chosen =
      policy_->select(ready_, sim_.now(), config_.ops_per_second);
  Job& job = ready_[chosen];
  if (job.first_started < 0) job.first_started = sim_.now();
  running_ = job.id;
  slice_start_ = sim_.now();

  const util::SimDuration to_completion =
      remaining_time(job, config_.ops_per_second);

  util::SimTime check = policy_->next_preemption_check(
      job,
      [&] {
        std::vector<Job> waiting;
        waiting.reserve(ready_.size() - 1);
        for (const Job& j : ready_) {
          if (j.id != job.id) waiting.push_back(j);
        }
        return waiting;
      }(),
      sim_.now(), config_.ops_per_second);

  const util::SimTime completion_at = sim_.now() + to_completion;
  const std::uint64_t epoch = reschedule_epoch_;
  if (check < completion_at) {
    // Re-evaluate the schedule at the laxity crossover; the running job may
    // get preempted there.
    pending_event_ = sim_.schedule_at(check, [this, epoch] {
      if (reschedule_epoch_ != epoch) return;
      pending_event_.reset();
      const auto before = running_;
      settle_running();
      reschedule();
      if (before && running_ && *before != *running_) ++stats_.preemptions;
    });
  } else {
    const util::JobId finishing = job.id;
    pending_event_ = sim_.schedule_at(completion_at, [this, epoch, finishing] {
      if (reschedule_epoch_ != epoch) return;
      pending_event_.reset();
      settle_running();
      const auto it =
          std::find_if(ready_.begin(), ready_.end(),
                       [&](const Job& j) { return j.id == finishing; });
      assert(it != ready_.end());
      it->remaining_ops = 0.0;
      it->completed = sim_.now();
      const bool missed = sim_.now() > it->absolute_deadline;
      finish(static_cast<std::size_t>(it - ready_.begin()),
             missed ? JobStatus::CompletedLate : JobStatus::Completed);
      reschedule();
    });
  }
}

void Processor::publish(obs::MetricsRegistry& registry,
                        obs::Labels labels) const {
  registry.counter("sched.processor.submitted", labels).set(stats_.submitted);
  registry.counter("sched.processor.completed_on_time", labels)
      .set(stats_.completed_on_time);
  registry.counter("sched.processor.completed_late", labels)
      .set(stats_.completed_late);
  registry.counter("sched.processor.dropped", labels).set(stats_.dropped);
  registry.counter("sched.processor.cancelled", labels).set(stats_.cancelled);
  registry.counter("sched.processor.preemptions", labels)
      .set(stats_.preemptions);
  registry.gauge("sched.processor.busy_s", labels)
      .set(util::to_seconds(stats_.busy_time));
  registry.gauge("sched.processor.queue_length", labels)
      .set(static_cast<double>(queue_length()));
}

}  // namespace p2prm::sched

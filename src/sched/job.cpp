#include "sched/job.hpp"

#include <cassert>
#include <cmath>

namespace p2prm::sched {

util::SimDuration remaining_time(const Job& job, double ops_per_second) {
  assert(ops_per_second > 0.0);
  if (job.remaining_ops <= 0.0) return 0;
  const double seconds = job.remaining_ops / ops_per_second;
  return static_cast<util::SimDuration>(std::ceil(seconds * 1e9));
}

util::SimDuration laxity(const Job& job, util::SimTime now,
                         double ops_per_second) {
  return (job.absolute_deadline - now) - remaining_time(job, ops_per_second);
}

}  // namespace p2prm::sched

// Preemptive single-CPU execution on the simulator.
//
// A Processor is the execution engine behind one peer: the Local Scheduler
// (policy) picks which ready job runs; the processor advances work at the
// peer's speed, fires completion events, and — for LLS — schedules exact
// laxity-crossover preemption checks so the implementation is true
// continuous LLS, not a quantized approximation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace p2prm::sched {

struct ProcessorConfig {
  double ops_per_second = 50e6;  // heterogeneous across peers
  Policy policy = Policy::LeastLaxity;
  // Soft real-time keeps late jobs (paper's model); hard-drop mode abandons
  // jobs whose deadline can no longer be met (used in ablations).
  bool drop_hopeless_jobs = false;
};

// One ready job's laxity as of "now", with the running job's remaining work
// settled to the current instant (its stored remaining_ops is only updated
// at scheduling points). Probe for invariant checks (src/check).
struct JobLaxity {
  util::JobId id;
  util::TaskId task;
  bool running = false;
  util::SimDuration laxity = 0;
};

enum class JobStatus {
  Completed,      // finished at or before its deadline
  CompletedLate,  // finished after the deadline (soft real-time miss)
  Dropped,        // abandoned: deadline unreachable (drop_hopeless_jobs)
  Cancelled,      // removed by the middleware (reassignment, peer leave)
};

struct ProcessorStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed_on_time = 0;
  std::uint64_t completed_late = 0;
  std::uint64_t dropped = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t preemptions = 0;
  util::SimDuration busy_time = 0;

  [[nodiscard]] std::uint64_t finished() const {
    return completed_on_time + completed_late + dropped;
  }
  [[nodiscard]] double miss_ratio() const {
    const auto f = finished();
    return f ? static_cast<double>(completed_late + dropped) /
                   static_cast<double>(f)
             : 0.0;
  }
};

class Processor {
 public:
  // `on_finish` fires for Completed/CompletedLate/Dropped (not Cancelled).
  using FinishFn = std::function<void(const Job&, JobStatus)>;

  Processor(sim::Simulator& simulator, ProcessorConfig config,
            FinishFn on_finish = {});
  ~Processor();

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  // Enqueues the job (release defaults to now if unset in the past).
  void submit(Job job);
  // Removes a queued or running job; returns false if unknown.
  bool cancel(util::JobId id);
  // Cancels everything (peer departure). on_finish is NOT called.
  void cancel_all();

  void set_policy(Policy p);
  [[nodiscard]] Policy policy() const { return policy_->policy(); }
  [[nodiscard]] double ops_per_second() const { return config_.ops_per_second; }

  // --- Introspection (what the Profiler samples) -------------------------
  [[nodiscard]] std::size_t queue_length() const { return ready_.size(); }
  [[nodiscard]] bool busy() const { return running_.has_value(); }
  // Total outstanding work, in seconds at this processor's speed.
  [[nodiscard]] double backlog_seconds() const;
  // Cumulative busy time; utilization over a window is a delta of this.
  [[nodiscard]] util::SimDuration busy_time() const;
  [[nodiscard]] const ProcessorStats& stats() const { return stats_; }
  // Writes sched.processor.* (job outcome counters, preemptions, busy time
  // and queue-depth gauges) under `labels`.
  void publish(obs::MetricsRegistry& registry, obs::Labels labels = {}) const;

  // Estimated completion time of a hypothetical job of `ops` arriving now,
  // assuming current backlog runs first (conservative FIFO bound). Used by
  // Resource Managers for §3.3 execution-time estimates.
  [[nodiscard]] util::SimTime estimate_completion(double ops) const;

  // Laxity of every ready job at the current instant, correcting the running
  // job's mid-slice progress. Order matches the ready queue.
  [[nodiscard]] std::vector<JobLaxity> laxity_view() const;

 private:
  void settle_running();
  void reschedule();
  void finish(std::size_t index, JobStatus status);

  sim::Simulator& sim_;
  ProcessorConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  FinishFn on_finish_;

  std::vector<Job> ready_;  // includes the running job
  std::optional<util::JobId> running_;
  util::SimTime slice_start_ = 0;
  std::optional<sim::EventId> pending_event_;
  ProcessorStats stats_;
  std::uint64_t reschedule_epoch_ = 0;
};

}  // namespace p2prm::sched

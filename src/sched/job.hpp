// The unit of work a Local Scheduler orders on one processor.
//
// An application task (§3.3) fans out into one job per service invocation;
// each job carries the task deadline and importance so the Local Scheduler
// can "exploit the deadlines of the applications and the actual computation
// and execution times on the processors" (§2).
#pragma once

#include <cstdint>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace p2prm::sched {

struct Job {
  util::JobId id;
  util::TaskId task;  // owning application task (invalid for background work)

  util::SimTime release = 0;            // arrival at this processor
  util::SimTime absolute_deadline = 0;  // miss if completion exceeds this
  double importance = 1.0;              // paper §3.3 Importance_t

  double total_ops = 0.0;      // work, in abstract CPU ops
  double remaining_ops = 0.0;  // decreases while running

  // Filled in by the processor.
  util::SimTime first_started = -1;
  util::SimTime completed = -1;

  [[nodiscard]] bool done() const { return remaining_ops <= 0.0; }
};

// Time still needed at `ops_per_second`, rounded up to whole nanoseconds.
[[nodiscard]] util::SimDuration remaining_time(const Job& job,
                                               double ops_per_second);

// Laxity at `now`: slack before the job can no longer meet its deadline if
// executed without interruption. Negative laxity means the deadline is
// already unreachable.
[[nodiscard]] util::SimDuration laxity(const Job& job, util::SimTime now,
                                       double ops_per_second);

}  // namespace p2prm::sched

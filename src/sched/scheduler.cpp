#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace p2prm::sched {

std::string_view policy_name(Policy p) {
  switch (p) {
    case Policy::LeastLaxity: return "LLS";
    case Policy::EarliestDeadline: return "EDF";
    case Policy::Fifo: return "FIFO";
    case Policy::StaticImportance: return "SP";
    case Policy::WeightedLaxity: return "WLLS";
  }
  return "?";
}

Policy policy_from_name(std::string_view name) {
  if (name == "LLS" || name == "lls") return Policy::LeastLaxity;
  if (name == "EDF" || name == "edf") return Policy::EarliestDeadline;
  if (name == "FIFO" || name == "fifo") return Policy::Fifo;
  if (name == "SP" || name == "sp") return Policy::StaticImportance;
  if (name == "WLLS" || name == "wlls") return Policy::WeightedLaxity;
  throw std::invalid_argument("unknown scheduling policy: " + std::string(name));
}

bool tie_break_before(const Job& a, const Job& b) {
  if (a.absolute_deadline != b.absolute_deadline) {
    return a.absolute_deadline < b.absolute_deadline;
  }
  if (a.importance != b.importance) return a.importance > b.importance;
  return a.id < b.id;
}

util::SimTime SchedulingPolicy::next_preemption_check(
    const Job&, const std::vector<Job>&, util::SimTime, double) const {
  // Work-conserving fixed-key policies only switch at arrivals/completions.
  return util::kTimeInfinity;
}

namespace {

template <typename Better>
std::size_t select_best(const std::vector<Job>& ready, Better better) {
  assert(!ready.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i) {
    if (better(ready[i], ready[best])) best = i;
  }
  return best;
}

class LeastLaxityPolicy final : public SchedulingPolicy {
 public:
  // Preemption hysteresis; see kLlsLaxityQuantum in scheduler.hpp.
  static constexpr util::SimDuration kLaxityQuantum = kLlsLaxityQuantum;

  std::size_t select(const std::vector<Job>& ready, util::SimTime now,
                     double ops_per_second) const override {
    return select_best(ready, [&](const Job& a, const Job& b) {
      const auto la = laxity(a, now, ops_per_second);
      const auto lb = laxity(b, now, ops_per_second);
      if (la != lb) return la < lb;
      return tie_break_before(a, b);
    });
  }

  util::SimTime next_preemption_check(const Job& running,
                                      const std::vector<Job>& waiting,
                                      util::SimTime now,
                                      double ops_per_second) const override {
    // While `running` executes, its laxity is constant:
    //   L_r = deadline_r - now - remaining_r(now).
    // A waiting job's laxity decays linearly:
    //   L_w(t) = deadline_w - t - remaining_w   (remaining_w frozen).
    // The first flip is at the smallest t with L_w(t) < L_r, i.e.
    //   t = deadline_w - remaining_w - L_r.
    const util::SimDuration l_run = laxity(running, now, ops_per_second);
    util::SimTime earliest = util::kTimeInfinity;
    for (const Job& w : waiting) {
      const util::SimTime cross =
          w.absolute_deadline - remaining_time(w, ops_per_second) - l_run;
      earliest = std::min(earliest, cross);
    }
    if (earliest == util::kTimeInfinity) return earliest;
    // Check one quantum past the crossing point: the waiting job then leads
    // by a full quantum, so flips cost at least kLaxityQuantum of progress
    // each (no nanosecond-scale thrashing between equal-laxity jobs).
    return std::max(earliest + kLaxityQuantum, now + kLaxityQuantum);
  }

  Policy policy() const override { return Policy::LeastLaxity; }
};

// Value-density scheduling: minimize laxity / importance. An important
// job with moderate slack outranks an unimportant one that is slightly
// tighter; under overload the scarce slack goes to the valuable work.
class WeightedLaxityPolicy final : public SchedulingPolicy {
 public:
  static constexpr util::SimDuration kLaxityQuantum = util::milliseconds(1);

  static double key(const Job& j, util::SimTime now, double ops_per_second) {
    return static_cast<double>(laxity(j, now, ops_per_second)) /
           std::max(j.importance, 1e-9);
  }

  std::size_t select(const std::vector<Job>& ready, util::SimTime now,
                     double ops_per_second) const override {
    return select_best(ready, [&](const Job& a, const Job& b) {
      const double ka = key(a, now, ops_per_second);
      const double kb = key(b, now, ops_per_second);
      if (ka != kb) return ka < kb;
      return tie_break_before(a, b);
    });
  }

  util::SimTime next_preemption_check(const Job& running,
                                      const std::vector<Job>& waiting,
                                      util::SimTime now,
                                      double ops_per_second) const override {
    // Waiting key decays with slope -1/w_w; the running key is constant at
    // L_r / w_r. Crossover: t = D_w - R_w - L_r * w_w / w_r.
    const double run_key = key(running, now, ops_per_second);
    util::SimTime earliest = util::kTimeInfinity;
    for (const Job& w : waiting) {
      const double cross_d =
          static_cast<double>(w.absolute_deadline -
                              remaining_time(w, ops_per_second)) -
          run_key * std::max(w.importance, 1e-9);
      const auto cross = static_cast<util::SimTime>(cross_d);
      earliest = std::min(earliest, cross);
    }
    if (earliest == util::kTimeInfinity) return earliest;
    return std::max(earliest + kLaxityQuantum, now + kLaxityQuantum);
  }

  Policy policy() const override { return Policy::WeightedLaxity; }
};

class EdfPolicy final : public SchedulingPolicy {
 public:
  std::size_t select(const std::vector<Job>& ready, util::SimTime,
                     double) const override {
    return select_best(ready, [](const Job& a, const Job& b) {
      return tie_break_before(a, b);  // primary key is already the deadline
    });
  }
  Policy policy() const override { return Policy::EarliestDeadline; }
};

class FifoPolicy final : public SchedulingPolicy {
 public:
  std::size_t select(const std::vector<Job>& ready, util::SimTime,
                     double) const override {
    return select_best(ready, [](const Job& a, const Job& b) {
      if (a.release != b.release) return a.release < b.release;
      return a.id < b.id;
    });
  }
  Policy policy() const override { return Policy::Fifo; }
};

class StaticImportancePolicy final : public SchedulingPolicy {
 public:
  std::size_t select(const std::vector<Job>& ready, util::SimTime,
                     double) const override {
    return select_best(ready, [](const Job& a, const Job& b) {
      if (a.importance != b.importance) return a.importance > b.importance;
      return tie_break_before(a, b);
    });
  }
  Policy policy() const override { return Policy::StaticImportance; }
};

}  // namespace

std::unique_ptr<SchedulingPolicy> make_policy(Policy p) {
  switch (p) {
    case Policy::LeastLaxity: return std::make_unique<LeastLaxityPolicy>();
    case Policy::EarliestDeadline: return std::make_unique<EdfPolicy>();
    case Policy::Fifo: return std::make_unique<FifoPolicy>();
    case Policy::StaticImportance:
      return std::make_unique<StaticImportancePolicy>();
    case Policy::WeightedLaxity:
      return std::make_unique<WeightedLaxityPolicy>();
  }
  throw std::invalid_argument("make_policy: bad policy");
}

}  // namespace p2prm::sched

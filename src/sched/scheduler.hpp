// Local scheduling policies.
//
// The paper's Local Scheduler "is based on the Least Laxity Scheduling
// (LLS) algorithm" (§2). We implement LLS plus the classic baselines the
// evaluation compares against: EDF, FIFO and static importance priority.
// A policy is a pure selection rule — the Processor owns time, preemption
// and execution.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/job.hpp"

namespace p2prm::sched {

enum class Policy {
  LeastLaxity,
  EarliestDeadline,
  Fifo,
  StaticImportance,
  // Importance-weighted least laxity (value-density, after the paper's
  // refs [10]/[26]): runs the job minimizing laxity / importance, so when
  // slack is scarce it is spent on the valuable tasks.
  WeightedLaxity,
};

[[nodiscard]] std::string_view policy_name(Policy p);
[[nodiscard]] Policy policy_from_name(std::string_view name);

// LLS preemption hysteresis: a waiting job must beat the running job's
// laxity by this margin before it preempts. Pure LLS thrashes between
// equal-laxity jobs (a textbook pathology — with nanosecond timestamps it
// degenerates into one context switch per nanosecond); the quantum bounds
// switches to one per millisecond worst case while changing schedules only
// by sub-millisecond laxity differences. Part of the scheduling contract:
// the sched.lls_laxity fuzz invariant allows exactly this much inversion.
inline constexpr util::SimDuration kLlsLaxityQuantum = util::milliseconds(1);

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  // Index (into `ready`) of the job to run at `now`. `ready` is non-empty.
  // `ops_per_second` is the processor speed (needed for laxity).
  [[nodiscard]] virtual std::size_t select(const std::vector<Job>& ready,
                                           util::SimTime now,
                                           double ops_per_second) const = 0;

  // Earliest future instant at which the selection could flip from
  // `running` to some waiting job even with no arrivals or completions
  // (only LLS has such instants: a waiting job's laxity decays while the
  // running job's laxity is constant). kTimeInfinity when no flip happens.
  [[nodiscard]] virtual util::SimTime next_preemption_check(
      const Job& running, const std::vector<Job>& waiting, util::SimTime now,
      double ops_per_second) const;

  [[nodiscard]] virtual Policy policy() const = 0;
};

[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(Policy p);

// Deterministic total tie-break shared by all policies: earlier deadline,
// then higher importance, then lower job id.
[[nodiscard]] bool tie_break_before(const Job& a, const Job& b);

}  // namespace p2prm::sched

#include "fairness/fairness.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace p2prm::fairness {

double jain_index(std::span<const double> loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double l : loads) {
    if (l < 0.0) throw std::invalid_argument("jain_index: negative load");
    sum += l;
    sum_sq += l * l;
  }
  if (sum_sq == 0.0) return 1.0;  // all idle: trivially fair
  return (sum * sum) / (static_cast<double>(loads.size()) * sum_sq);
}

double best_load(std::span<const double> loads, std::size_t i) {
  if (i >= loads.size()) throw std::out_of_range("best_load: bad index");
  if (loads.size() == 1) return loads[0];
  double sum_others = 0.0;
  double sumsq_others = 0.0;
  for (std::size_t j = 0; j < loads.size(); ++j) {
    if (j != i) {
      sum_others += loads[j];
      sumsq_others += loads[j] * loads[j];
    }
  }
  // F(x) = (S + x)^2 / (n (Q + x^2)); dF/dx = 0  =>  x = Q / S.
  if (sum_others <= 0.0) return 0.0;
  return sumsq_others / sum_others;
}

void IncrementalFairness::set(util::PeerId peer, double load) {
  if (load < 0.0) throw std::invalid_argument("IncrementalFairness: negative load");
  auto [it, inserted] = loads_.try_emplace(peer, 0.0);
  const double old = it->second;
  sum_ += load - old;
  sum_sq_ += load * load - old * old;
  it->second = load;
}

void IncrementalFairness::remove(util::PeerId peer) {
  const auto it = loads_.find(peer);
  if (it == loads_.end()) return;
  sum_ -= it->second;
  sum_sq_ -= it->second * it->second;
  loads_.erase(it);
}

double IncrementalFairness::load(util::PeerId peer) const {
  const auto it = loads_.find(peer);
  return it == loads_.end() ? 0.0 : it->second;
}

bool IncrementalFairness::contains(util::PeerId peer) const {
  return loads_.count(peer) != 0;
}

double IncrementalFairness::index() const {
  if (loads_.empty()) return 1.0;
  if (sum_sq_ <= 0.0) return 1.0;
  return (sum_ * sum_) / (static_cast<double>(loads_.size()) * sum_sq_);
}

double IncrementalFairness::index_with(
    std::span<const std::pair<util::PeerId, double>> deltas) const {
  double sum = sum_;
  double sum_sq = sum_sq_;
  std::size_t n = loads_.size();
  // Apply deltas sequentially; repeated peers accumulate. For correctness
  // with repeats we need each peer's evolving load, so stage them.
  std::unordered_map<util::PeerId, double> staged;
  staged.reserve(deltas.size());
  for (const auto& [peer, delta] : deltas) {
    double current;
    const auto st = staged.find(peer);
    if (st != staged.end()) {
      current = st->second;
    } else {
      const auto it = loads_.find(peer);
      if (it == loads_.end()) {
        ++n;  // joining peer
        current = 0.0;
      } else {
        current = it->second;
      }
    }
    const double next = current + delta;
    sum += next - current;
    sum_sq += next * next - current * current;
    staged[peer] = next;
  }
  if (n == 0) return 1.0;
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

double IncrementalFairness::mean_load() const {
  return loads_.empty() ? 0.0 : sum_ / static_cast<double>(loads_.size());
}

void IncrementalFairness::rebuild() {
  sum_ = 0.0;
  sum_sq_ = 0.0;
  for (const auto& [_, l] : loads_) {
    sum_ += l;
    sum_sq_ += l * l;
  }
}

}  // namespace p2prm::fairness

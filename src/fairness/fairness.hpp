// Jain's Fairness Index — the paper's load-balancing objective (§4.2).
//
//   F(l) = (sum_p l_p)^2 / (|P| * sum_p l_p^2)            (Eq. 1)
//
// Properties the paper relies on (and our tests verify):
//  * range (0, 1]; 1 iff all loads equal, -> 1/|P| when one peer carries
//    everything;
//  * scale-free: F(c*l) == F(l) for c > 0;
//  * continuous in every l_p, maximized when l_p equals the common value.
//
// IncrementalFairness supports O(1) "what if peer p's load changed by d"
// queries — the inner loop of the allocation algorithm (Fig. 3) evaluates
// the fairness of a hypothetical assignment for every candidate path.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace p2prm::fairness {

// Eq. 1 on a plain load vector. Empty input and all-zero input return 1.0
// (a system with no load is trivially fair). Negative loads are invalid.
[[nodiscard]] double jain_index(std::span<const double> loads);

// The load value that, substituted at position `i`, maximizes the index
// given the other loads stay fixed (the paper's l_best discussion): the
// maximizer is the mean of the *other* loads.
[[nodiscard]] double best_load(std::span<const double> loads, std::size_t i);

// Maintains sum(l) and sum(l^2) for a keyed set of loads with O(1) update
// and O(1) hypothetical queries.
class IncrementalFairness {
 public:
  void set(util::PeerId peer, double load);
  void remove(util::PeerId peer);
  [[nodiscard]] double load(util::PeerId peer) const;
  [[nodiscard]] bool contains(util::PeerId peer) const;
  [[nodiscard]] std::size_t size() const { return loads_.size(); }

  // Current F over all tracked peers.
  [[nodiscard]] double index() const;

  // F if each (peer, delta) in `deltas` were applied. Peers may repeat;
  // unknown peers are treated as joining with load = delta.
  [[nodiscard]] double index_with(
      std::span<const std::pair<util::PeerId, double>> deltas) const;

  [[nodiscard]] double total_load() const { return sum_; }
  [[nodiscard]] double mean_load() const;

  // Recomputes the running sums from scratch (guards against FP drift in
  // very long simulations; called periodically by resource managers).
  void rebuild();

 private:
  std::unordered_map<util::PeerId, double> loads_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace p2prm::fairness

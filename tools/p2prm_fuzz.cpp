// Deterministic simulation fuzzer for the p2prm middleware.
//
//   p2prm_fuzz --seeds=0..200            sweep a seed range (end exclusive)
//   p2prm_fuzz --repro='p2prm-fuzz/1;…'  replay one serialized scenario
//   p2prm_fuzz --json                    machine-readable report on stdout
//   p2prm_fuzz --artifact=repro.txt      write failing repro strings to a file
//   p2prm_fuzz --no-oracles              skip determinism/cache/span replays
//   p2prm_fuzz --threads=N               parallel-engine oracle thread count
//                                        (default 2; 0 or 1 disables it)
//   p2prm_fuzz --base-threads=N          engine threads for the base run
//                                        itself (default 1 = sequential); CI
//                                        runs the sweep at 1 and 4 and cmp's
//                                        the two --json reports byte-for-byte
//   p2prm_fuzz --no-shrink               report the original failing scenario
//   p2prm_fuzz --trace-dump=FILE         single scenario only: write every
//                                        trace event (one per line) to FILE —
//                                        CI's parallel-equivalence job reruns
//                                        a divergent seed at 1 and N threads
//                                        and diffs the two dumps
//   p2prm_fuzz --spans                   force span (hop) events on, so the
//                                        trace dump carries per-hop detail
//   p2prm_fuzz --scale=N                 scale-flavored sweep: each generated
//                                        scenario carries N lazy registry
//                                        rows, materialization waves and
//                                        (half the seeds) hierarchical mode
//                                        (ScenarioSpec::generate_scale); CI's
//                                        nightly scale job runs this at 100k
//   p2prm_fuzz --stream                  streaming-flavored sweep: each
//                                        generated scenario additionally runs
//                                        a live-streaming overlay (viewer
//                                        churn, flash crowds, chain placement
//                                        under the fault plan) with the
//                                        stream.accounting invariant checked
//                                        at every boundary
//                                        (ScenarioSpec::generate_stream).
//                                        Sim transport, --base-threads=1 only.
//   p2prm_fuzz --transport=sim|socket    control-plane backend (default sim).
//                                        socket runs each scenario over real
//                                        loopback TCP (docs/TRANSPORT.md): it
//                                        forces --no-oracles (replay digests
//                                        are timing-dependent) and is rejected
//                                        with --base-threads > 1 (the
//                                        parallel engine is sim-only). Fault
//                                        plans run through the socket fault
//                                        shim with all invariants checked.
//                                        Tune with --time-scale / --base-port.
//
// Every scenario is fully determined by its seed: the same build and the
// same --seeds range produce a byte-identical report (CI runs the sweep
// twice and cmp's the output). Exit code: 0 all clean, 1 violations found,
// 2 usage error. See docs/TESTING.md for the repro workflow.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "core/system.hpp"
#include "core/trace.hpp"
#include "util/args.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace {

using p2prm::check::ScenarioSpec;
using p2prm::check::SeedOutcome;

struct SeedRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive
};

bool parse_seed_range(const std::string& s, SeedRange& out) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) return false;
  try {
    out.begin = std::stoull(s.substr(0, dots));
    out.end = std::stoull(s.substr(dots + 2));
  } catch (...) {
    return false;
  }
  return out.begin <= out.end;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  static const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = digits[(v >> (4 * i)) & 0xf];
  }
  buf[16] = '\0';
  return std::string(buf);
}

struct FailureReport {
  std::uint64_t seed = 0;
  bool from_repro = false;
  std::string repro;
  std::string invariant;
  std::string message;
  std::string shrunk_repro;
  std::size_t shrink_runs = 0;
  std::size_t shrink_steps = 0;
};

void write_json(std::ostream& os, const std::vector<SeedOutcome>& outcomes,
                const std::vector<std::uint64_t>& seeds,
                const std::vector<FailureReport>& failures) {
  p2prm::util::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("p2prm-fuzz-report/1");
  w.key("runs").value(static_cast<std::uint64_t>(outcomes.size()));
  w.key("failures").value(static_cast<std::uint64_t>(failures.size()));
  w.key("results").begin_array();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    const auto& r = o.result;
    w.begin_object();
    if (i < seeds.size()) w.key("seed").value(seeds[i]);
    w.key("repro").value(o.spec.repro());
    w.key("ok").value(r.ok());
    w.key("digest").value(hex64(r.digest));
    w.key("submitted").value(static_cast<std::uint64_t>(r.submitted));
    w.key("completed").value(static_cast<std::uint64_t>(r.completed));
    w.key("rejected").value(static_cast<std::uint64_t>(r.rejected));
    w.key("failed").value(static_cast<std::uint64_t>(r.failed));
    w.key("orphaned").value(static_cast<std::uint64_t>(r.orphaned));
    w.key("missed").value(static_cast<std::uint64_t>(r.missed));
    w.key("trace_events").value(r.trace_events);
    w.key("net_sent").value(r.net_sent);
    w.key("net_delivered").value(r.net_delivered);
    w.key("domains").value(static_cast<std::uint64_t>(r.domains));
    w.key("alive").value(static_cast<std::uint64_t>(r.alive));
    w.key("violations").begin_array();
    for (const auto& v : r.violations) {
      w.begin_object();
      w.key("invariant").value(v.invariant);
      w.key("at").value(v.at);
      w.key("message").value(v.message);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("shrunk").begin_array();
  for (const auto& f : failures) {
    w.begin_object();
    w.key("seed").value(f.seed);
    w.key("invariant").value(f.invariant);
    w.key("repro").value(f.repro);
    w.key("shrunk_repro").value(f.shrunk_repro);
    w.key("shrink_runs").value(static_cast<std::uint64_t>(f.shrink_runs));
    w.key("shrink_steps").value(static_cast<std::uint64_t>(f.shrink_steps));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  p2prm::util::Args args(argc, argv);
  const std::string seeds_arg = args.get("seeds", "0..20");
  const std::string repro_arg = args.get("repro", "");
  const bool json = args.get_bool("json", false);
  const bool oracles = !args.get_bool("no-oracles", false);
  const long threads_arg = args.get_int("threads", 2);
  if (threads_arg < 0 || threads_arg > 64) {
    std::cerr << "bad --threads; expected 0..64, got " << threads_arg << '\n';
    return 2;
  }
  const auto parallel_threads = static_cast<unsigned>(threads_arg);
  const long base_threads_arg = args.get_int("base-threads", 1);
  if (base_threads_arg < 1 || base_threads_arg > 64) {
    std::cerr << "bad --base-threads; expected 1..64, got " << base_threads_arg
              << '\n';
    return 2;
  }
  const auto base_threads = static_cast<unsigned>(base_threads_arg);
  const bool do_shrink = !args.get_bool("no-shrink", false);
  const std::string artifact = args.get("artifact", "");
  const std::string trace_dump = args.get("trace-dump", "");
  const bool force_spans = args.get_bool("spans", false);
  const long scale_arg = args.get_int("scale", 0);
  if (scale_arg < 0 || scale_arg > 10000000) {
    std::cerr << "bad --scale; expected 0..10000000 lazy rows, got "
              << scale_arg << '\n';
    return 2;
  }
  const auto scale_lazy = static_cast<std::uint32_t>(scale_arg);
  const bool stream_mode = args.get_bool("stream", false);
  const std::string transport_arg = args.get("transport", "sim");
  const double time_scale = args.get_double("time-scale", 0.05);
  const auto base_port =
      static_cast<std::uint16_t>(args.get_int("base-port", 19000));
  const std::string log = args.get("log", "");
  if (log == "debug") {
    p2prm::util::Logger::instance().set_level(p2prm::util::LogLevel::Debug);
  } else if (log == "info") {
    p2prm::util::Logger::instance().set_level(p2prm::util::LogLevel::Info);
  } else if (!log.empty()) {
    std::cerr << "bad --log; expected debug or info\n";
    return 2;
  }
  for (const auto& key : args.unused()) {
    std::cerr << "unknown flag --" << key << '\n';
    return 2;
  }

  bool socket_transport = false;
  if (transport_arg == "socket") {
    socket_transport = true;
  } else if (transport_arg != "sim") {
    std::cerr << "bad --transport; expected sim or socket, got "
              << transport_arg << '\n';
    return 2;
  }
  bool run_oracles = oracles;
  p2prm::check::ConfigTweakFn tweak;
  if (socket_transport) {
    if (base_threads > 1) {
      std::cerr << "--transport=socket requires --base-threads=1 (the "
                   "parallel engine is sim-only)\n";
      return 2;
    }
    if (run_oracles) {
      std::cerr << "note: --transport=socket forces --no-oracles (socket "
                   "replay digests are timing-dependent)\n";
      run_oracles = false;
    }
    tweak = [time_scale, base_port](p2prm::core::SystemConfig& sys) {
      sys.transport = p2prm::core::TransportKind::Socket;
      sys.socket.time_scale = time_scale;
      sys.socket.base_port = base_port;
    };
  }

  std::vector<ScenarioSpec> specs;
  std::vector<std::uint64_t> seeds;
  bool from_repro = false;
  if (!repro_arg.empty()) {
    auto spec = ScenarioSpec::parse(repro_arg);
    if (!spec) {
      std::cerr << "unparseable repro string: " << repro_arg << '\n';
      return 2;
    }
    specs.push_back(*spec);
    seeds.push_back(spec->seed);
    from_repro = true;
  } else {
    SeedRange range;
    if (!parse_seed_range(seeds_arg, range)) {
      std::cerr << "bad --seeds; expected A..B (end exclusive), got "
                << seeds_arg << '\n';
      return 2;
    }
    if (stream_mode && scale_lazy > 0) {
      std::cerr << "--stream and --scale are mutually exclusive scenario "
                   "flavors\n";
      return 2;
    }
    for (std::uint64_t s = range.begin; s < range.end; ++s) {
      specs.push_back(stream_mode ? ScenarioSpec::generate_stream(s)
                      : scale_lazy > 0
                          ? ScenarioSpec::generate_scale(s, scale_lazy)
                          : ScenarioSpec::generate(s));
      seeds.push_back(s);
    }
  }
  for (const auto& spec : specs) {
    if (!spec.stream) continue;
    // The streaming overlay shares the sequential sim event loop.
    if (socket_transport) {
      std::cerr << "stream scenarios require --transport=sim\n";
      return 2;
    }
    if (base_threads > 1) {
      std::cerr << "stream scenarios require --base-threads=1\n";
      return 2;
    }
  }

  if (!trace_dump.empty()) {
    // Dedicated single-scenario mode: run once at --base-threads and write
    // the full trace, one event per line. Two dumps of the same seed at
    // different thread counts diff cleanly — the parallel-equivalence job's
    // divergence artifact.
    if (specs.size() != 1) {
      std::cerr << "--trace-dump needs exactly one scenario (a single-seed "
                   "--seeds range or a --repro), got "
                << specs.size() << '\n';
      return 2;
    }
    ScenarioSpec spec = specs.front();
    if (force_spans) spec.spans = true;
    std::ofstream dump(trace_dump);
    if (!dump) {
      std::cerr << "cannot open " << trace_dump << " for writing\n";
      return 2;
    }
    std::size_t dumped = 0;
    const auto inspect = [&](p2prm::core::System& system) {
      const auto* tracer = system.tracer();
      if (tracer == nullptr) return;
      for (const auto& e : tracer->events()) {
        dump << e.at << ' ' << p2prm::core::trace_kind_name(e.kind);
        if (e.peer.valid()) dump << " peer=" << e.peer.value();
        if (e.task.valid()) dump << " task=" << e.task.value();
        if (e.domain.valid()) dump << " domain=" << e.domain.value();
        if (!e.detail.empty()) dump << ' ' << e.detail;
        dump << '\n';
        ++dumped;
      }
    };
    auto checker = p2prm::check::InvariantChecker::with_defaults();
    const auto result = p2prm::check::run_scenario(
        spec, checker, p2prm::util::seconds(2), inspect, base_threads, tweak);
    std::cout << "seed=" << seeds.front() << " threads=" << base_threads
              << " digest=" << hex64(result.digest) << " events=" << dumped
              << " -> " << trace_dump << '\n';
    for (const auto& v : result.violations) {
      std::cerr << "violation " << v.invariant << ": " << v.message << '\n';
    }
    return result.ok() ? 0 : 1;
  }

  std::vector<SeedOutcome> outcomes;
  std::vector<FailureReport> failures;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SeedOutcome outcome = p2prm::check::run_spec(
        specs[i], run_oracles, parallel_threads, base_threads, tweak);
    if (!outcome.ok()) {
      FailureReport f;
      f.seed = seeds[i];
      f.from_repro = from_repro;
      f.repro = outcome.spec.repro();
      f.invariant = outcome.result.violations.front().invariant;
      f.message = outcome.result.violations.front().message;
      f.shrunk_repro = f.repro;
      if (do_shrink) {
        const auto shrunk = p2prm::check::shrink(
            outcome.spec,
            p2prm::check::make_same_invariant_predicate(f.invariant));
        f.shrunk_repro = shrunk.minimal.repro();
        f.shrink_runs = shrunk.runs;
        f.shrink_steps = shrunk.steps;
      }
      if (!json) {
        std::cerr << "FAIL seed=" << f.seed << " invariant=" << f.invariant
                  << "\n  " << f.message << "\n  repro: " << f.repro
                  << "\n  shrunk: " << f.shrunk_repro << '\n';
      }
      failures.push_back(std::move(f));
    } else if (!json) {
      std::cout << "ok seed=" << seeds[i] << " digest="
                << hex64(outcome.result.digest) << " tasks="
                << outcome.result.submitted << '\n';
    }
    outcomes.push_back(std::move(outcome));
  }

  if (json) write_json(std::cout, outcomes, seeds, failures);

  if (!artifact.empty() && !failures.empty()) {
    std::ofstream out(artifact);
    for (const auto& f : failures) {
      out << "seed=" << f.seed << " invariant=" << f.invariant << '\n'
          << "repro: " << f.repro << '\n'
          << "shrunk: " << f.shrunk_repro << '\n'
          << "message: " << f.message << '\n';
    }
  }
  if (!json) {
    std::cout << outcomes.size() << " scenario(s), " << failures.size()
              << " failure(s)\n";
  }
  return failures.empty() ? 0 : 1;
}

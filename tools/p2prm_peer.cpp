// p2prm_peer — one process of a socket-transport deployment
// (docs/TRANSPORT.md).
//
// Every process of a run is launched with the same plan parameters plus
// its own --peer-index; it rebuilds the identical workload::DeploymentPlan
// from the seed, hosts exactly its peer, submits that peer's share of the
// workload schedule, and at the end prints one JSON line with its ledger
// counts and final view of the domain — which scripts/launch_peers.py
// aggregates and asserts on.
//
//   # a 4-peer deployment on loopback, 5x faster than real time
//   for K in 0 1 2 3; do
//     ./build/tools/p2prm_peer --seed=7 --peers=4 --peer-index=$K --time-scale=0.2 &
//   done; wait
//
// With --peer-index=all the whole deployment runs inside this single
// process (every peer still talks TCP through loopback) — handy for
// debugging the transport without a process zoo.
#include <exception>
#include <iostream>
#include <string>

#include "core/system.hpp"
#include "fault/frame_shim.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "workload/deployment.hpp"

namespace {

using namespace p2prm;

// --shim-probe=N: feed N synthetic frames per ordered link through the
// fault shim this deployment would install and print the decision counts
// plus the decision-log fingerprint. Pure computation — no sockets, no
// simulator — so two invocations with equal flags must print identical
// output; CI diffs them as the cross-process shim-determinism check.
int shim_probe(const workload::DeploymentPlan& plan, std::uint64_t frames) {
  fault::FrameShim shim(plan.fault_plan());
  std::uint64_t drops = 0, delays = 0, duplicates = 0;
  const std::uint32_t peers = plan.config.peers;
  for (std::uint32_t from = 0; from < peers; ++from) {
    for (std::uint32_t to = 0; to < peers; ++to) {
      if (from == to) continue;
      for (std::uint64_t seq = 0; seq < frames; ++seq) {
        const auto v =
            shim.on_frame(util::PeerId{from}, util::PeerId{to}, seq, 256);
        drops += v.drop;
        delays += v.extra_delay > 0;
        duplicates += v.duplicate_after > 0;
      }
    }
  }
  std::cout << "{\"probe_frames_per_link\":" << frames
            << ",\"links\":" << static_cast<std::uint64_t>(peers) * (peers - 1)
            << ",\"drops\":" << drops << ",\"delays\":" << delays
            << ",\"duplicates\":" << duplicates << ",\"fingerprint\":\""
            << shim.decision_fingerprint() << "\"}" << std::endl;
  return 0;
}

int run(const util::Args& args) {
  // --log-level=debug routes the overlay's join/failover narration to
  // stderr, which the launcher captures per peer — the first thing to
  // reach for when a drill strands a peer.
  if (const std::string level = args.get("log-level", ""); !level.empty()) {
    util::LogLevel parsed = util::LogLevel::Warn;
    if (level == "trace") parsed = util::LogLevel::Trace;
    else if (level == "debug") parsed = util::LogLevel::Debug;
    else if (level == "info") parsed = util::LogLevel::Info;
    else if (level == "warn") parsed = util::LogLevel::Warn;
    else if (level == "error") parsed = util::LogLevel::Error;
    else if (level == "off") parsed = util::LogLevel::Off;
    else {
      std::cerr << "unknown --log-level=" << level << "\n";
      return 2;
    }
    util::Logger::instance().set_level(parsed);
  }

  workload::DeploymentConfig config = workload::DeploymentConfig::benign(
      static_cast<std::uint64_t>(args.get_int("seed", 1)),
      static_cast<std::uint32_t>(args.get_int("peers", 4)));
  config.workload = util::seconds(args.get_int("workload-s", 20));
  config.drain = util::seconds(args.get_int("drain-s", 25));
  config.task_cap = static_cast<std::uint32_t>(
      args.get_int("task-cap", static_cast<std::int64_t>(config.task_cap)));
  config.arrival_rate = args.get_double("arrival-rate", config.arrival_rate);
  // The failover smoke raises this above the peer count so the deployment
  // forms a single domain — then every survivor must agree on who replaced
  // the killed RM.
  config.max_domain_size = static_cast<std::size_t>(args.get_int(
      "max-domain-size", static_cast<std::int64_t>(config.max_domain_size)));

  const std::string index_arg = args.get("peer-index", "all");
  const bool whole = index_arg == "all";
  const std::uint32_t first =
      whole ? 0 : static_cast<std::uint32_t>(std::stoul(index_arg));
  const std::uint32_t last = whole ? config.peers : first + 1;
  if (first >= config.peers) {
    std::cerr << "--peer-index=" << first << " out of range (peers="
              << config.peers << ")\n";
    return 2;
  }

  config.base_port = static_cast<std::uint16_t>(
      args.get_int("base-port", config.base_port));
  config.time_scale = args.get_double("time-scale", 1.0);

  // Fault injection (docs/FAULT_MODEL.md): the flags only parameterize the
  // DeploymentConfig, so every process rebuilds the identical FaultPlan
  // and its frame shim takes the same decision for every (from, to, seq).
  config.fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  config.fault_loss = args.get_double("fault-loss", 0.0);
  config.fault_duplicate = args.get_double("fault-duplicate", 0.0);
  config.fault_delay = util::milliseconds(args.get_int("fault-delay-ms", 0));
  config.fault_jitter = util::milliseconds(args.get_int("fault-jitter-ms", 0));
  config.partition_at = util::seconds(args.get_int("partition-at-s", 2));
  config.partition_hold =
      util::seconds(args.get_int("partition-hold-s", 0));

  const workload::DeploymentPlan plan = workload::DeploymentPlan::build(config);
  if (const std::int64_t probe = args.get_int("shim-probe", 0); probe > 0) {
    return shim_probe(plan, static_cast<std::uint64_t>(probe));
  }
  core::System system(plan.system_config(core::TransportKind::Socket, first));
  if (config.faulty()) system.install_fault_plan(plan.fault_plan());
  plan.schedule(system, first, last);
  system.run_for(config.total_duration());
  // Flush final reports/acks before tearing the process down.
  system.drain_transport(/*wall_ms=*/1000);

  const auto outcome = workload::DeploymentOutcome::from(system.ledger());
  // The peer's final view of the control plane: who it currently follows.
  std::uint64_t final_rm = ~0ull;
  bool joined = false;
  if (const core::PeerNode* node = system.peer(util::PeerId{first});
      node != nullptr && node->alive()) {
    joined = node->joined();
    if (node->current_rm().valid()) final_rm = node->current_rm().value();
  }

  // One compact JSON line: the launcher parses each process's stdout.
  const auto& ns = system.transport().stats();
  std::cout << "{\"peer_index\":" << (whole ? -1 : static_cast<int>(first))
            << ",\"joined\":" << (joined ? "true" : "false")
            << ",\"final_rm\":"
            << (final_rm == ~0ull ? -1 : static_cast<std::int64_t>(final_rm))
            << ",\"submitted\":" << outcome.submitted
            << ",\"admitted\":" << outcome.admitted
            << ",\"completed\":" << outcome.completed
            << ",\"rejected\":" << outcome.rejected
            << ",\"failed\":" << outcome.failed
            << ",\"orphaned\":" << outcome.orphaned
            << ",\"pending\":" << outcome.pending
            << ",\"messages_sent\":" << ns.messages_sent
            << ",\"messages_delivered\":" << ns.messages_delivered
            << ",\"undeliverable\":" << ns.messages_undeliverable
            << ",\"fault_dropped\":" << ns.messages_fault_dropped
            << ",\"partitioned\":" << ns.messages_partitioned
            << ",\"frames_corrupt\":" << ns.frames_corrupt
            << ",\"sessions_reset\":" << ns.sessions_reset << "}"
            << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "p2prm_peer: " << e.what() << "\n";
    return 1;
  }
}

// F1 — Figure 1: the example resource graph (A) and the service graph (B)
// derived from it.
//
// Reconstructs the paper's exact scenario: "a source that is transmitting
// 800x600 MPEG-2 video, at 512 Kbps and a user that wants to view that
// video in 640x480 MPEG-4, at 64Kbps. Our goal is to find a path from v1
// ... to v3. In this example, we can follow any of the {e1,e2}, {e1,e3} or
// {e1,e4,e5,e8}."
#include <iostream>

#include "core/allocation.hpp"
#include "graph/path_search.hpp"
#include "media/catalog.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace p2prm;

namespace {

const char* state_name(const media::Figure1Catalog& fig,
                       const media::MediaFormat& f) {
  if (f == fig.v1) return "v1";
  if (f == fig.v2) return "v2";
  if (f == fig.v3) return "v3";
  if (f == fig.v4) return "v4";
  if (f == fig.v5) return "v5";
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const double e2_host_load = args.get_double("e2-load", 0.0);

  const auto fig = media::figure1_catalog();

  // The G_r of Figure 1(A): e1..e8 hosted on peers 1..8; peer 10 stores the
  // source object, peer 20 is the requesting user.
  sim::Simulator sim(1);
  net::Topology topo;
  net::Network net(sim, topo);
  core::SystemConfig config;
  core::InfoBase info(util::DomainId{0}, util::PeerId{1});
  util::Rng rng(7);

  for (std::uint64_t p = 1; p <= 8; ++p) {
    overlay::PeerSpec spec;
    spec.id = util::PeerId{p};
    spec.capacity_ops_per_s = 50e6;
    topo.place_at(spec.id, {static_cast<double>(p * 30), 0});
    info.add_member(spec, 0);
    core::PeerAnnounce announce;
    announce.spec = spec;
    announce.services = {{util::ServiceId{p}, fig.edges[p - 1]}};
    info.add_inventory(announce);
  }
  for (std::uint64_t p : {10, 20}) {
    overlay::PeerSpec spec;
    spec.id = util::PeerId{p};
    spec.capacity_ops_per_s = 50e6;
    topo.place_at(spec.id, {static_cast<double>(p * 20), 50});
    info.add_member(spec, 0);
  }
  const auto object =
      media::make_object(util::ObjectId{1}, fig.v1, 10.0, rng);
  core::PeerAnnounce src;
  src.spec.id = util::PeerId{10};
  src.objects = {object};
  info.add_inventory(src);

  if (e2_host_load > 0.0) {
    core::ProfilerReport report;
    report.sample.smoothed_load_ops = e2_host_load;
    info.record_report(util::PeerId{2}, report, 0);
  }

  std::cout << "Figure 1(A): resource graph G_r\n";
  util::Table states({"state", "format"});
  for (const auto& f : {fig.v1, fig.v2, fig.v3, fig.v4, fig.v5}) {
    states.cell(state_name(fig, f)).cell(f.to_string()).end_row();
  }
  states.print(std::cout);

  util::Table edges({"edge", "peer", "from", "to", "conversion", "load"});
  const auto& gr = info.resource_graph();
  for (const auto* e : gr.all_services()) {
    edges.cell("e" + util::to_string(e->id))
        .cell(util::to_string(e->peer))
        .cell(state_name(fig, e->type.input))
        .cell(state_name(fig, e->type.output))
        .cell(e->type.to_string())
        .cell(e->load, 2)
        .end_row();
  }
  edges.print(std::cout);

  // The three candidate execution sequences of the paper's narrative.
  core::AllocationRequest request;
  request.task = util::TaskId{1};
  request.q.object = object.id;
  request.q.acceptable_formats = {fig.v3};
  request.q.deadline = util::seconds(120);
  request.sink = util::PeerId{20};

  graph::SearchStats stats;
  const auto candidates =
      core::enumerate_candidates(info, net, config, request, false, &stats);

  std::cout << "\nCandidate execution sequences v1 -> v3 (Fig. 3 BFS):\n";
  util::Table cands({"sequence", "hops", "est. exec (s)", "fairness after",
                     "feasible"});
  for (const auto& c : candidates) {
    std::string seq;
    for (const auto& hop : c.hops) {
      if (!seq.empty()) seq += ",";
      seq += "e" + util::to_string(hop.service);
    }
    cands.cell("{" + seq + "}")
        .cell(c.hops.size())
        .cell(util::to_seconds(c.exec_time), 3)
        .cell(c.fairness_after, 4)
        .cell(c.feasible ? "yes" : "no")
        .end_row();
  }
  cands.print(std::cout);
  std::cout << "BFS stats: vertices popped " << stats.vertices_popped
            << ", sequences enqueued " << stats.sequences_enqueued
            << ", candidates " << stats.candidates_found << "\n";

  const auto result = core::make_allocator(core::AllocatorKind::PaperBfs)
                          ->allocate(info, net, config, request, rng);
  std::cout << "\nFigure 1(B): composed service graph G_s (fairness-optimal "
               "allocation)\n";
  if (result.found) {
    std::cout << "  " << result.sg.to_string() << "\n";
    std::cout << "  estimated execution time: "
              << util::format_time(result.estimated_execution)
              << ", post-assignment fairness: "
              << util::format("%.4f", result.fairness_after) << "\n";
  } else {
    std::cout << "  allocation failed: " << result.failure_reason << "\n";
  }
  std::cout << "\nPaper check: the enumerated sequences must be exactly "
               "{e1,e2}, {e1,e3}, {e1,e4,e5,e8} -> "
            << (candidates.size() == 3 ? "OK" : "MISMATCH") << "\n";
  return candidates.size() == 3 ? 0 : 1;
}

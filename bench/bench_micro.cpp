// M1 — microbenchmarks of the hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.hpp"
#include "core/allocation.hpp"
#include "fairness/fairness.hpp"
#include "graph/path_search.hpp"
#include "media/catalog.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2prm;

void BM_JainIndex(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<double> loads(static_cast<std::size_t>(state.range(0)));
  for (auto& l : loads) l = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::jain_index(loads));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JainIndex)->Range(8, 4096)->Complexity(benchmark::oN);

void BM_IncrementalFairnessHypothetical(benchmark::State& state) {
  util::Rng rng(2);
  fairness::IncrementalFairness inc;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    inc.set(util::PeerId{i}, rng.uniform(0.0, 100.0));
  }
  const std::vector<std::pair<util::PeerId, double>> deltas{
      {util::PeerId{1}, 5.0}, {util::PeerId{3}, 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.index_with(deltas));
  }
}
BENCHMARK(BM_IncrementalFairnessHypothetical)->Range(8, 4096);

void BM_BloomInsert(benchmark::State& state) {
  bloom::BloomFilter bf({65536, 5});
  util::Rng rng(3);
  for (auto _ : state) {
    bf.insert(rng.next());
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  bloom::BloomFilter bf({65536, 5});
  util::Rng rng(4);
  for (int i = 0; i < 5000; ++i) bf.insert(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.possibly_contains(rng.next()));
  }
}
BENCHMARK(BM_BloomQuery);

void BM_EventQueuePushPop(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    sim::EventQueue q;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<util::SimTime>(rng.below(1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 16384)->Complexity(benchmark::oNLogN);

void BM_LlsSelect(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<sched::Job> ready(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ready.size(); ++i) {
    ready[i].id = util::JobId{i};
    ready[i].total_ops = ready[i].remaining_ops = rng.uniform(1e5, 1e7);
    ready[i].absolute_deadline = util::from_seconds(rng.uniform(1.0, 100.0));
  }
  const auto policy = sched::make_policy(sched::Policy::LeastLaxity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(ready, 0, 1e6));
  }
}
BENCHMARK(BM_LlsSelect)->Range(2, 256);

void BM_TranscodeCostModel(benchmark::State& state) {
  const media::TranscoderType type{
      {media::Codec::MPEG2, media::kRes800x600, 512},
      {media::Codec::MPEG4, media::kRes640x480, 128}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::transcode_ops_per_media_second(type));
  }
}
BENCHMARK(BM_TranscodeCostModel);

void BM_Figure3Bfs(benchmark::State& state) {
  // Paper BFS over a randomly provisioned ladder graph.
  util::Rng rng(7);
  const media::Catalog catalog = media::ladder_catalog();
  graph::ResourceGraph gr;
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t e = 0; e < edges; ++e) {
    gr.add_service(util::ServiceId{e}, util::PeerId{rng.below(64)},
                   catalog.conversions()[rng.below(catalog.conversions().size())]);
  }
  const auto start = gr.find_state(
      media::MediaFormat{media::Codec::MPEG2, media::kRes800x600, 512});
  const auto goal = gr.find_state(
      media::MediaFormat{media::Codec::MPEG4, media::kRes640x480, 128});
  if (!start || !goal) {
    state.SkipWithError("graph lacks endpoints");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_paths(gr, *start, *goal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Figure3Bfs)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_TypeKey(benchmark::State& state) {
  const media::TranscoderType type{
      {media::Codec::MPEG2, media::kRes800x600, 512},
      {media::Codec::MPEG4, media::kRes640x480, 128}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(type.type_key());
  }
}
BENCHMARK(BM_TypeKey);

}  // namespace

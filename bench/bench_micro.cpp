// M1 — microbenchmarks of the hot paths (google-benchmark).
//
// Run with --benchmark_format=json for machine-readable output; the
// deterministic work counters (vertices popped, cache hit rate, heap-
// spilled callables, compactions) ride along as benchmark counters, so
// the JSON doubles as a structural-regression record independent of
// wall-clock noise (see docs/BENCHMARKS.md).
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "core/allocation.hpp"
#include "fairness/fairness.hpp"
#include "graph/path_cache.hpp"
#include "graph/path_search.hpp"
#include "media/catalog.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2prm;

void BM_JainIndex(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<double> loads(static_cast<std::size_t>(state.range(0)));
  for (auto& l : loads) l = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairness::jain_index(loads));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JainIndex)->Range(8, 4096)->Complexity(benchmark::oN);

void BM_IncrementalFairnessHypothetical(benchmark::State& state) {
  util::Rng rng(2);
  fairness::IncrementalFairness inc;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    inc.set(util::PeerId{i}, rng.uniform(0.0, 100.0));
  }
  const std::vector<std::pair<util::PeerId, double>> deltas{
      {util::PeerId{1}, 5.0}, {util::PeerId{3}, 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.index_with(deltas));
  }
}
BENCHMARK(BM_IncrementalFairnessHypothetical)->Range(8, 4096);

void BM_BloomInsert(benchmark::State& state) {
  bloom::BloomFilter bf({65536, 5});
  util::Rng rng(3);
  for (auto _ : state) {
    bf.insert(rng.next());
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  bloom::BloomFilter bf({65536, 5});
  util::Rng rng(4);
  for (int i = 0; i < 5000; ++i) bf.insert(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.possibly_contains(rng.next()));
  }
}
BENCHMARK(BM_BloomQuery);

void BM_EventQueuePushPop(benchmark::State& state) {
  util::Rng rng(5);
  const std::uint64_t heap_before = sim::EventFn::heap_constructions();
  for (auto _ : state) {
    sim::EventQueue q;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      // Capture shape of the hot schedule sites: a pointer plus ids.
      void* ctx = &q;
      const std::uint64_t a = rng.next();
      const std::uint64_t b = i;
      q.push(static_cast<util::SimTime>(rng.below(1'000'000)),
             [ctx, a, b] { benchmark::DoNotOptimize(ctx == nullptr ? a : b); });
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
  }
  // 0 when every callable fit EventFn's inline buffer.
  state.counters["callable_heap_allocs"] = static_cast<double>(
      sim::EventFn::heap_constructions() - heap_before);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 16384)->Complexity(benchmark::oNLogN);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Timer-heavy regime: most scheduled events are cancelled before firing
  // (retries that succeed, re-armed timeouts). Exercises tombstone
  // compaction; the counters record how much garbage the compactor drops.
  util::Rng rng(51);
  double compactions = 0.0;
  double dropped = 0.0;
  for (auto _ : state) {
    sim::EventQueue q;
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(
          q.push(static_cast<util::SimTime>(rng.below(1'000'000)), [] {}));
    }
    for (int i = 0; i < n; ++i) {
      if (i % 8 != 0) q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
    compactions += static_cast<double>(q.stats().compactions);
    dropped += static_cast<double>(q.stats().tombstones_compacted);
  }
  state.counters["compactions"] =
      benchmark::Counter(compactions, benchmark::Counter::kAvgIterations);
  state.counters["tombstones_dropped"] =
      benchmark::Counter(dropped, benchmark::Counter::kAvgIterations);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EventQueueCancelHeavy)
    ->Range(256, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_LlsSelect(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<sched::Job> ready(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < ready.size(); ++i) {
    ready[i].id = util::JobId{i};
    ready[i].total_ops = ready[i].remaining_ops = rng.uniform(1e5, 1e7);
    ready[i].absolute_deadline = util::from_seconds(rng.uniform(1.0, 100.0));
  }
  const auto policy = sched::make_policy(sched::Policy::LeastLaxity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(ready, 0, 1e6));
  }
}
BENCHMARK(BM_LlsSelect)->Range(2, 256);

void BM_TranscodeCostModel(benchmark::State& state) {
  const media::TranscoderType type{
      {media::Codec::MPEG2, media::kRes800x600, 512},
      {media::Codec::MPEG4, media::kRes640x480, 128}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::transcode_ops_per_media_second(type));
  }
}
BENCHMARK(BM_TranscodeCostModel);

void BM_Figure3Bfs(benchmark::State& state) {
  // Paper BFS over a randomly provisioned ladder graph.
  util::Rng rng(7);
  const media::Catalog catalog = media::ladder_catalog();
  graph::ResourceGraph gr;
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t e = 0; e < edges; ++e) {
    gr.add_service(util::ServiceId{e}, util::PeerId{rng.below(64)},
                   catalog.conversions()[rng.below(catalog.conversions().size())]);
  }
  const auto start = gr.find_state(
      media::MediaFormat{media::Codec::MPEG2, media::kRes800x600, 512});
  const auto goal = gr.find_state(
      media::MediaFormat{media::Codec::MPEG4, media::kRes640x480, 128});
  if (!start || !goal) {
    state.SkipWithError("graph lacks endpoints");
    return;
  }
  graph::SearchStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_paths(gr, *start, *goal, {}, &stats));
  }
  // Per-search work, independent of wall clock (last iteration's stats —
  // the graph is fixed, so every iteration pops the same count).
  state.counters["vertices_popped"] = static_cast<double>(stats.vertices_popped);
  state.counters["candidates"] = static_cast<double>(stats.candidates_found);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Figure3Bfs)->Range(32, 2048)->Complexity(benchmark::oN);

void BM_PathCacheRepeatedQuery(benchmark::State& state) {
  // The allocator's steady-state regime between load reports: the same
  // (start, goal) enumeration over an unchanged graph, served memoized.
  util::Rng rng(7);
  const media::Catalog catalog = media::ladder_catalog();
  graph::ResourceGraph gr;
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t e = 0; e < edges; ++e) {
    gr.add_service(util::ServiceId{e}, util::PeerId{rng.below(64)},
                   catalog.conversions()[rng.below(catalog.conversions().size())]);
  }
  const auto start = gr.find_state(
      media::MediaFormat{media::Codec::MPEG2, media::kRes800x600, 512});
  const auto goal = gr.find_state(
      media::MediaFormat{media::Codec::MPEG4, media::kRes640x480, 128});
  if (!start || !goal) {
    state.SkipWithError("graph lacks endpoints");
    return;
  }
  graph::PathCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.bfs_paths(gr, *start, *goal));
  }
  const double probes =
      static_cast<double>(cache.stats().hits + cache.stats().misses);
  state.counters["cache_hit_rate"] =
      probes > 0.0 ? static_cast<double>(cache.stats().hits) / probes : 0.0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathCacheRepeatedQuery)->Range(32, 2048)->Complexity(benchmark::oN);

// The next four benchmarks justify the PR 6 data-layout pass head to
// head: open-addressing FlatMap vs std::unordered_map on the InfoBase
// lookup pattern, and the size-classed event Pool vs plain heap
// allocation on the EventQueue churn pattern. Both pairs use the same
// seeds and access sequence so only the container differs; the
// deterministic counters (mean probe length, pool reuse rate) feed the
// regression gate while the wall-clock columns stay informational.

template <typename Map>
Map build_lookup_map(std::size_t n) {
  util::Rng rng(0xF1A7);
  Map m;
  for (std::size_t i = 0; i < n; ++i) {
    // Key drawn before value (operator[]= would evaluate the RHS first).
    const util::PeerId key{rng.next()};
    m[key] = rng.next();
  }
  return m;
}

std::vector<util::PeerId> lookup_probe_keys(std::size_t n) {
  // Same generator state as build_lookup_map: half the probes hit, half
  // miss — the InfoBase measured_exec_ access mix.
  util::Rng rng(0xF1A7);
  std::vector<util::PeerId> keys;
  keys.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.emplace_back(rng.next());
    rng.next();
  }
  util::Rng miss(0xD00D);
  for (std::size_t i = 0; i < n; ++i) keys.emplace_back(miss.next());
  return keys;
}

void BM_FlatMapLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m =
      build_lookup_map<util::FlatMap<util::PeerId, std::uint64_t>>(n);
  const auto keys = lookup_probe_keys(n);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& k : keys) {
      if (const auto* v = m.find(k)) sum += *v;
    }
    benchmark::DoNotOptimize(sum);
  }
  double probes = 0.0;
  std::size_t hits = 0;
  for (const auto& k : keys) {
    if (m.contains(k)) {
      probes += static_cast<double>(m.probe_length(k));
      ++hits;
    }
  }
  state.counters["mean_probe_length"] =
      hits > 0 ? probes / static_cast<double>(hits) : 0.0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlatMapLookup)->Range(256, 16384)->Complexity(benchmark::o1);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m =
      build_lookup_map<std::unordered_map<util::PeerId, std::uint64_t>>(n);
  const auto keys = lookup_probe_keys(n);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& k : keys) {
      if (const auto it = m.find(k); it != m.end()) sum += it->second;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnorderedMapLookup)->Range(256, 16384)->Complexity(benchmark::o1);

void BM_ArenaAlloc(benchmark::State& state) {
  // The EventQueue churn pattern: allocate a wave of spilled callables,
  // free them, repeat — after the first wave everything comes from the
  // thread-local freelist.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto before = util::Pool::stats();
  std::vector<void*> live(n);
  for (auto _ : state) {
    for (auto& p : live) p = util::Pool::allocate(48);
    for (auto& p : live) util::Pool::deallocate(p, 48);
  }
  const auto after = util::Pool::stats();
  const double fresh = static_cast<double>(after.fresh - before.fresh);
  const double reused = static_cast<double>(after.reused - before.reused);
  const double total = fresh + reused;
  state.counters["pool_reuse_rate"] = total > 0.0 ? reused / total : 0.0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ArenaAlloc)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_HeapAlloc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<void*> live(n);
  for (auto _ : state) {
    for (auto& p : live) p = ::operator new(48);
    for (auto& p : live) ::operator delete(p);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HeapAlloc)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_TypeKey(benchmark::State& state) {
  const media::TranscoderType type{
      {media::Codec::MPEG2, media::kRes800x600, 512},
      {media::Codec::MPEG4, media::kRes640x480, 128}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(type.type_key());
  }
}
BENCHMARK(BM_TypeKey);

}  // namespace

// Shared experiment scaffolding for the bench binaries.
//
// Every experiment builds a World: a System bootstrapped through the join
// protocol with a synthesized heterogeneous population, plus the standard
// workload machinery. Binaries parameterize it per DESIGN.md's experiment
// index and print paper-style tables.
#pragma once

#include <iostream>
#include <memory>
#include <optional>

#include "core/system.hpp"
#include "media/catalog.hpp"
#include "metrics/collectors.hpp"
#include "metrics/report.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/requests.hpp"

namespace p2prm::bench {

struct WorldConfig {
  core::SystemConfig system{};
  std::size_t peers = 32;
  workload::HeterogeneityConfig het{};
  workload::PopulationConfig pop{};
  workload::ProvisionConfig prov{};
  workload::RequestConfig req{};
  util::SimDuration settle = util::seconds(5);

  WorldConfig() {
    // Objects scale with the hosting capacity so every object is hosted.
    pop.object_count = 0;  // resolved in World: peers * 2
  }
};

class World {
 public:
  explicit World(WorldConfig config)
      : config_(std::move(config)),
        catalog_(media::ladder_catalog()),
        system_(config_.system),
        rng_(config_.system.seed * 7919 + 17),
        population_(catalog_,
                    [&] {
                      auto pop = config_.pop;
                      if (pop.object_count == 0) {
                        pop.object_count = std::max<std::size_t>(
                            10, config_.peers * 2);
                      }
                      return pop;
                    }(),
                    system_, rng_),
        factory_(workload::make_peer_factory(catalog_, population_,
                                             config_.het, config_.prov,
                                             system_, rng_)),
        synthesizer_(catalog_, population_, config_.req) {}

  std::vector<util::PeerId> bootstrap() {
    return workload::bootstrap_network(system_, factory_, config_.peers,
                                       config_.settle);
  }

  // Runs a Poisson workload for `duration`, then drains for `drain`.
  // Returns the number of submitted tasks.
  std::size_t run_poisson(double rate_per_s, util::SimDuration duration,
                          util::SimDuration drain) {
    workload::WorkloadDriver driver(
        system_, std::make_unique<workload::PoissonArrivals>(rate_per_s),
        synthesizer_);
    driver.start(system_.simulator().now() + duration);
    system_.run_for(duration + drain);
    system_.ledger().orphan_pending(system_.simulator().now());
    return driver.submitted();
  }

  [[nodiscard]] core::System& system() { return system_; }
  [[nodiscard]] const media::Catalog& catalog() const { return catalog_; }
  [[nodiscard]] workload::ObjectPopulation& population() { return population_; }
  [[nodiscard]] const workload::PeerFactory& factory() const { return factory_; }
  [[nodiscard]] workload::RequestSynthesizer& synthesizer() {
    return synthesizer_;
  }
  [[nodiscard]] util::Rng& rng() { return rng_; }

 private:
  WorldConfig config_;
  media::Catalog catalog_;
  core::System system_;
  util::Rng rng_;
  workload::ObjectPopulation population_;
  workload::PeerFactory factory_;
  workload::RequestSynthesizer synthesizer_;
};

// Renders a result table: pretty-printed by default, RFC-4180 CSV when the
// binary was invoked with --csv (for piping into plotting scripts).
inline void emit(const util::Table& table, const util::Args& args) {
  if (args.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << "\n" << claim << "\n"
            << "================================================================\n";
}

// Average control bytes per submitted task (stream payloads excluded).
inline double control_bytes_per_task(const core::System& system,
                                     std::size_t submitted) {
  const auto split = metrics::split_traffic(
      const_cast<core::System&>(system).network().stats());
  return submitted
             ? static_cast<double>(split.control_bytes) /
                   static_cast<double>(submitted)
             : 0.0;
}

}  // namespace p2prm::bench

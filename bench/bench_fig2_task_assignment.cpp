// F2 — Figure 2: the task-assignment walkthrough.
//
// "(A) A peer submits a query to the Resource Manager. (B) The Resource
// Manager assigns the task to peers. (C) Transcoded media streaming
// begins."
//
// Runs one query through a live 8-peer domain and reports the protocol
// messages exchanged in each phase, plus the task timeline.
#include <iostream>

#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

namespace {

std::map<std::string, std::uint64_t> snapshot(const core::System& system) {
  return const_cast<core::System&>(system).network().stats().per_type_count;
}

std::map<std::string, std::uint64_t> delta(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, v] : after) {
    const auto it = before.find(k);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    if (v > prev) out[k] = v - prev;
  }
  return out;
}

void print_phase(const char* title,
                 const std::map<std::string, std::uint64_t>& counts) {
  std::cout << "\n" << title << "\n";
  util::Table t({"message", "count"});
  for (const auto& [k, v] : counts) t.cell(k).cell(v).end_row();
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  WorldConfig config;
  config.peers = args.get_int("peers", 8);
  config.system.seed = args.get_int("seed", 42);
  World world(config);
  const auto ids = world.bootstrap();
  print_header("F2 / Figure 2", "Task assignment walkthrough: query -> "
               "assignment -> transcoded streaming");

  auto& system = world.system();
  const auto before_query = snapshot(system);

  // Phase A: "A peer submits a query to the Resource Manager."
  const auto& object = world.population().at(0);
  media::MediaFormat target = object.format;
  target.bitrate_kbps = object.format.bitrate_kbps / 2;
  core::QoSRequirements q;
  q.object = object.id;
  q.acceptable_formats = {target};
  q.deadline = util::minutes(3);
  const util::PeerId origin = ids.back();
  const util::SimTime submitted = system.simulator().now();
  const auto task = system.submit_task(origin, q);
  // Run just long enough for the query to reach the RM and the composition
  // messages to go out.
  system.run_for(util::milliseconds(50));
  const auto after_assignment = snapshot(system);

  // Phase C: streaming to completion.
  system.run_for(util::minutes(4));
  const auto after_streaming = snapshot(system);

  std::cout << "query: object " << object.id << " ("
            << object.format.to_string() << ", "
            << util::format("%.1fs", object.duration_s) << ") -> "
            << target.to_string() << ", deadline "
            << util::format_time(q.deadline) << ", origin peer " << origin
            << "\n";

  print_phase("(A)+(B) query and task assignment (first 50 ms):",
              delta(before_query, after_assignment));
  print_phase("(C) transcoded media streaming:",
              delta(after_assignment, after_streaming));

  const auto* record = system.ledger().record(task);
  std::cout << "\nTask timeline\n";
  util::Table t({"event", "value"});
  t.cell("status").cell(std::string(core::task_status_name(record->status)))
      .end_row();
  t.cell("submitted at").cell(util::format_time(submitted)).end_row();
  if (record->finished >= 0) {
    t.cell("delivered at").cell(util::format_time(record->finished)).end_row();
    t.cell("response time")
        .cell(util::format_time(record->response_time()))
        .end_row();
  }
  t.cell("deadline met").cell(record->missed_deadline ? "no" : "yes").end_row();
  t.print(std::cout);

  // The service graph the RM composed (queried before completion cleanup is
  // not possible here, so re-derive from the RM stats instead).
  const auto agg = metrics::aggregate_rm_stats(system);
  std::cout << "\nRM decisions: " << agg.queries << " queries, "
            << agg.admitted << " admitted, " << agg.rejected << " rejected\n";

  return record->status == core::TaskStatus::Completed ? 0 : 1;
}

// E6 — admission control and overload adaptation (§4.5).
//
// "When admitting a new application task the resource manager estimates
// whether its QoS requirements can be accommodated ... If all peers are too
// loaded ... the task is not admitted." Sweep the arrival rate across the
// saturation point with admission control and reassignment toggled.
#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 24);
  const double measure_s = args.get_double("measure-s", 90);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E6", "Claim (§4.5): admission control + adaptive "
               "reassignment protect goodput under overload");
  std::cout << "peers=" << peers << " measure=" << measure_s << "s\n\n";

  util::Table t({"rate (/s)", "admission", "reassign", "submitted",
                 "goodput", "on-time ratio", "rejected", "late", "mean util"});

  for (const double rate : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    struct Mode {
      bool admission;
      bool reassign;
    };
    for (const auto mode : {Mode{true, true}, Mode{true, false},
                            Mode{false, false}}) {
      WorldConfig config;
      config.peers = peers;
      config.system.seed = seed;
      config.system.admission_control = mode.admission;
      config.system.enable_reassignment = mode.reassign;
      // A single domain so rejected really means rejected (not redirected).
      config.system.redirect_across_domains = false;
      World world(config);
      world.bootstrap();

      metrics::LoadProbe probe(world.system(), util::seconds(1));
      probe.start();
      const auto submitted = world.run_poisson(
          rate, util::from_seconds(measure_s), util::seconds(90));
      probe.stop();

      const auto& ledger = world.system().ledger();
      t.cell(rate, 1)
          .cell(mode.admission ? "on" : "off")
          .cell(mode.reassign ? "on" : "off")
          .cell(submitted)
          .cell(ledger.goodput(), 4)
          .cell(ledger.on_time_ratio(), 4)
          .cell(ledger.rejected())
          .cell(ledger.missed())
          .cell(probe.mean_utilization(2.0, measure_s + 2.0), 3)
          .end_row();
    }
  }
  emit(t, args);
  std::cout << "\nExpectation: below saturation the modes coincide; beyond "
               "it, admission control\nconverts would-be deadline misses "
               "into explicit rejections and keeps the on-time ratio of\n"
               "admitted tasks high, while the unprotected system degrades "
               "for everyone.\n";
  return 0;
}

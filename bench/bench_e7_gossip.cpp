// E7 — inter-domain summaries: gossip convergence and Bloom sizing
// (§3.1, §4.4, §4.5).
//
// Part A: convergence time and traffic of the lazy gossip protocol as the
// number of domains grows.
// Part B: Bloom filter false-positive rate vs. bits/element — the cost of
// a wrong inter-domain redirect is a wasted query hop, so this is the
// sizing curve an operator needs.
#include <iostream>

#include "bloom/bloom_filter.hpp"
#include "gossip/gossip_engine.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace p2prm;

namespace {

struct ConvergenceResult {
  double mean_rounds_to_full;
  double seconds_to_full;
  std::uint64_t messages;
  std::uint64_t bytes;
};

ConvergenceResult run_convergence(std::size_t domains, std::size_t fanout,
                                  std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Topology topo;
  net::Network net(sim, topo);
  gossip::GossipConfig config;
  config.fanout = fanout;
  config.period = util::seconds(2);

  std::vector<util::PeerId> rms;
  std::vector<std::unique_ptr<gossip::GossipEngine>> engines;
  util::Rng rng(seed);
  for (std::uint64_t i = 0; i < domains; ++i) {
    const util::PeerId id{i + 1};
    rms.push_back(id);
    topo.place_at(id, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  for (std::uint64_t i = 0; i < domains; ++i) {
    const util::PeerId id{i + 1};
    auto engine = std::make_unique<gossip::GossipEngine>(
        sim, net, id, config, [&rms] { return rms; });
    engines.push_back(std::move(engine));
    auto* raw = engines.back().get();
    net.attach(id, {}, [raw](util::PeerId from, const net::Message& m) {
      if (const auto* g = net::message_as<gossip::GossipMessage>(m)) {
        raw->handle_message(from, *g);
      }
    });
    gossip::DomainSummary s;
    s.domain = util::DomainId{i};
    s.resource_manager = id;
    s.version = 1;
    s.objects = bloom::BloomFilter({2048, 4});
    s.services = bloom::BloomFilter({2048, 4});
    engines.back()->set_local_summary(s);
    engines.back()->start();
  }

  util::SimTime converged_at = -1;
  while (converged_at < 0 && sim.now() < util::minutes(10)) {
    sim.run_until(sim.now() + util::seconds(1));
    bool all = true;
    for (const auto& e : engines) {
      if (e->known().size() < domains) {
        all = false;
        break;
      }
    }
    if (all) converged_at = sim.now();
  }
  ConvergenceResult r;
  r.seconds_to_full = converged_at < 0 ? -1 : util::to_seconds(converged_at);
  r.mean_rounds_to_full =
      converged_at < 0 ? -1
                       : r.seconds_to_full / util::to_seconds(config.period);
  r.messages = net.stats().per_type_count.count("gossip.summaries")
                   ? net.stats().per_type_count.at("gossip.summaries")
                   : 0;
  r.bytes = net.stats().per_type_bytes.count("gossip.summaries")
                ? net.stats().per_type_bytes.at("gossip.summaries")
                : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::uint64_t seed = args.get_int("seed", 42);

  std::cout << "E7a: gossip convergence of domain summaries (period 2s)\n\n";
  util::Table a({"domains", "fanout", "converged (s)", "rounds", "messages",
                 "KB sent"});
  for (const std::size_t domains : {4u, 8u, 16u, 32u, 64u}) {
    for (const std::size_t fanout : {1u, 2u, 3u}) {
      const auto r = run_convergence(domains, fanout, seed);
      a.cell(domains)
          .cell(fanout)
          .cell(r.seconds_to_full, 1)
          .cell(r.mean_rounds_to_full, 1)
          .cell(r.messages)
          .cell(static_cast<double>(r.bytes) / 1024.0, 1)
          .end_row();
    }
  }
  if (args.get_bool("csv", false)) a.write_csv(std::cout);
  else a.print(std::cout);
  std::cout << "\nExpectation: rounds-to-convergence grows ~logarithmically "
               "with the domain count\nand shrinks with fanout — the lazy "
               "propagation the paper argues 'should suffice'.\n";

  std::cout << "\nE7b: Bloom summary sizing — false-positive probability vs "
               "bits/element\n(a false positive = one wasted inter-domain "
               "redirect)\n\n";
  util::Table b({"bits/elem", "hashes (opt)", "measured fpp", "theory fpp",
                 "summary KB (1000 objs)"});
  util::Rng rng(seed);
  const std::size_t n = 1000;
  for (const std::size_t bpe : {2u, 4u, 6u, 8u, 12u, 16u}) {
    bloom::BloomParameters params;
    params.bits = bpe * n;
    params.hashes = bloom::optimal_hash_count(params.bits, n);
    bloom::BloomFilter bf(params);
    for (std::size_t i = 0; i < n; ++i) bf.insert(rng.next());
    std::size_t fp = 0;
    const std::size_t probes = 100000;
    for (std::size_t i = 0; i < probes; ++i) {
      if (bf.possibly_contains(rng.next())) ++fp;
    }
    b.cell(bpe)
        .cell(params.hashes)
        .cell(static_cast<double>(fp) / probes, 5)
        .cell(bloom::expected_fpp(params.bits, params.hashes, n), 5)
        .cell(static_cast<double>(bf.wire_size()) / 1024.0, 2)
        .end_row();
  }
  if (args.get_bool("csv", false)) b.write_csv(std::cout);
  else b.print(std::cout);
  std::cout << "\nExpectation: measured fpp tracks theory; ~8-12 bits/elem "
               "(1-2 KB per 1000 entries)\nmakes wrong redirects rare.\n";
  return 0;
}

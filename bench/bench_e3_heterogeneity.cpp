// E3 — "works effectively in a heterogeneous ... environment" (§1, §6).
//
// Sweeps the peer-capacity distribution (homogeneous / uniform / bimodal /
// Pareto) and compares allocators. The paper's load metric l_i = capacity x
// utilization makes fairness capacity-aware, so the fairness-maximizing
// allocator should hold up as heterogeneity grows while naive baselines
// overload weak peers.
#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 1.0);
  const double measure_s = args.get_double("measure-s", 90);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E3", "Claim: the schemes work effectively in a heterogeneous "
               "environment (capacity distributions)");
  std::cout << "peers=" << peers << " rate=" << rate << "/s measure="
            << measure_s << "s\n\n";

  util::Table t({"capacity dist", "allocator", "goodput", "miss ratio",
                 "cum fairness", "p95 resp (s)"});

  for (const auto dist :
       {workload::CapacityDistribution::Homogeneous,
        workload::CapacityDistribution::Uniform,
        workload::CapacityDistribution::Bimodal,
        workload::CapacityDistribution::Pareto}) {
    for (const auto kind :
         {core::AllocatorKind::PaperBfs, core::AllocatorKind::Random,
          core::AllocatorKind::LeastLoaded}) {
      WorldConfig config;
      config.peers = peers;
      config.system.seed = seed;
      config.system.allocator = kind;
      config.het.distribution = dist;
      World world(config);
      world.bootstrap();

      metrics::LoadProbe probe(world.system(), util::milliseconds(500));
      probe.start();
      world.run_poisson(rate, util::from_seconds(measure_s),
                        util::seconds(60));
      probe.stop();

      const auto& ledger = world.system().ledger();
      const auto& rt = ledger.response_times_s();
      t.cell(std::string(workload::capacity_distribution_name(dist)))
          .cell(std::string(core::allocator_name(kind)))
          .cell(ledger.goodput(), 4)
          .cell(ledger.miss_ratio(), 4)
          .cell(probe.cumulative_fairness(), 4)
          .cell(rt.empty() ? 0.0 : rt.quantile(0.95), 2)
          .end_row();
    }
  }
  emit(t, args);
  std::cout << "\nExpectation: the gap between paper-bfs and random widens "
               "as capacity skew grows\n(bimodal, pareto): fairness-aware "
               "placement protects the weak peers.\n";
  return 0;
}

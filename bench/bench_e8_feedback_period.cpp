// E8 — the profiler update-frequency trade-off (§4.4).
//
// "Care must be taken when selecting the period for the load updates
// propagation. Too frequent updates would cause high network traffic and
// processing load, while too infrequent updates may not capture the
// application requirements adequately."
//
// Sweeps the report period and measures both sides of the trade-off:
// control traffic vs. allocation quality (deadline performance, fairness).
#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 1.2);
  const double measure_s = args.get_double("measure-s", 90);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E8", "Claim (§4.4): the load-report period trades control "
               "traffic against allocation quality");
  std::cout << "peers=" << peers << " rate=" << rate << "/s measure="
            << measure_s << "s\n\n";

  util::Table t({"report period", "goodput", "miss ratio", "cum fairness",
                 "report msgs", "report KB", "ctrl KB/task"});

  // -1 marks the adaptive mode (§4.4: QoS-driven update frequency,
  // 100 ms..2 s bracket).
  for (const std::int64_t period_ms :
       {std::int64_t{50}, std::int64_t{200}, std::int64_t{500},
        std::int64_t{1000}, std::int64_t{2000}, std::int64_t{5000},
        std::int64_t{10000}, std::int64_t{-1}}) {
    const bool adaptive = period_ms < 0;
    WorldConfig config;
    config.peers = peers;
    config.system.seed = seed;
    config.system.report_period =
        util::milliseconds(adaptive ? 2000 : period_ms);
    config.system.adaptive_report_period = adaptive;
    config.system.report_period_min = util::milliseconds(100);
    // Keep failure detection consistent with slow reporting.
    config.system.member_failure_timeout = std::max(
        util::milliseconds((adaptive ? 2000 : period_ms) * 4),
        util::milliseconds(2500));
    World world(config);
    world.bootstrap();

    metrics::LoadProbe probe(world.system(), util::milliseconds(500));
    probe.start();
    world.system().network().reset_stats();
    const auto submitted = world.run_poisson(
        rate, util::from_seconds(measure_s), util::seconds(60));
    probe.stop();

    const auto& stats = world.system().network().stats();
    const auto reports =
        stats.per_type_count.count("core.profiler_report")
            ? stats.per_type_count.at("core.profiler_report")
            : 0;
    const auto report_bytes =
        stats.per_type_bytes.count("core.profiler_report")
            ? stats.per_type_bytes.at("core.profiler_report")
            : 0;
    const auto& ledger = world.system().ledger();
    t.cell(adaptive ? std::string("adaptive 0.1-2s")
                    : util::format_time(util::milliseconds(period_ms)))
        .cell(ledger.goodput(), 4)
        .cell(ledger.miss_ratio(), 4)
        .cell(probe.cumulative_fairness(), 4)
        .cell(reports)
        .cell(static_cast<double>(report_bytes) / 1024.0, 1)
        .cell(control_bytes_per_task(world.system(), submitted) / 1024.0, 2)
        .end_row();
  }
  emit(t, args);
  std::cout << "\nExpectation: report traffic falls linearly with the "
               "period; beyond ~2-5s the RM's\nload picture goes stale and "
               "goodput/fairness erode — the sweet spot sits in between.\n";
  return 0;
}

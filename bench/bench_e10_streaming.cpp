// E10 — live-streaming workload: competing chain-placement policies.
//
// A standalone streaming pool (no RM protocol; the stream::StreamEngine
// drives allocation directly, like bench_fig3 does) runs the same
// workload::StreamPlan under each allocator at two load levels — "steady"
// (viewer churn only) and "flash" (the same viewers plus a seeded flash
// crowd on one channel) — and reports the paper-style table: continuity
// index and deadline-miss rate per policy per load, plus Jain fairness over
// per-peer uploaded bytes and the hottest uplink's saturation.
//
// --json prints a machine-readable report to stdout instead of the table;
// the output is byte-deterministic per seed (CI runs it twice and cmp's).
#include <iostream>
#include <memory>

#include "stream/engine.hpp"
#include "net/network.hpp"
#include "util/args.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"

using namespace p2prm;

namespace {

struct LoadLevel {
  std::string name;
  std::uint32_t viewers;
  std::uint32_t flash;
};

struct CellResult {
  stream::StreamStats stats;
  double continuity = 0.0;
  double miss_rate = 0.0;
  double jain = 0.0;
  double max_saturation = 0.0;
  std::uint64_t digest = 0;
};

// One fully isolated world per (policy, load) cell: fresh simulator, fresh
// pool, same seed — so every cell sees an identical substrate and plan.
CellResult run_cell(core::AllocatorKind kind, const workload::StreamPlan& plan,
                    std::size_t peers, std::uint64_t seed) {
  sim::Simulator sim{1};
  net::Topology topo{};
  net::Network net(sim, topo);
  core::SystemConfig config{};
  config.allocator = kind;
  const media::Catalog catalog = media::ladder_catalog();

  stream::StreamEngine engine(sim, net, config, plan);
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xE10);
  const auto& conversions = catalog.conversions();
  constexpr std::size_t kServicesPerPeer = 6;
  std::uint64_t service_id = 1;
  for (std::size_t p = 0; p < peers; ++p) {
    overlay::PeerSpec spec;
    spec.id = util::PeerId{p};
    spec.capacity_ops_per_s = rng.uniform(30e6, 90e6);
    spec.link.uplink_bytes_per_s = rng.uniform(1.5e6, 6.0e6);
    spec.link.downlink_bytes_per_s = spec.link.uplink_bytes_per_s;
    topo.place_at(spec.id, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
    std::vector<core::ServiceOffering> services;
    for (std::size_t s = 0; s < kServicesPerPeer; ++s) {
      // Round-robin over the whole catalog: every conversion is hosted by
      // several peers, so chain feasibility is a policy question, not a
      // lottery.
      services.push_back(core::ServiceOffering{
          util::ServiceId{service_id++},
          conversions[(p * kServicesPerPeer + s) % conversions.size()]});
    }
    engine.add_peer(spec, services);
  }
  // Viewer sinks live outside the pool (pure consumers).
  for (const workload::ViewerPlan& v : plan.viewers) {
    topo.place_at(v.sink, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }

  engine.start();
  sim.run_until(plan.config.live_window + plan.config.chunk_deadline +
                plan.config.late_grace + util::seconds(5));

  CellResult r;
  r.stats = engine.stats();
  r.continuity = engine.continuity_index();
  r.miss_rate = engine.deadline_miss_rate();
  r.jain = engine.jain_upload_fairness();
  r.max_saturation = engine.max_upload_saturation();
  r.digest = engine.digest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = static_cast<std::size_t>(args.get_int("peers", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::uint32_t viewers =
      static_cast<std::uint32_t>(args.get_int("viewers", 20));
  const std::uint32_t channels =
      static_cast<std::uint32_t>(args.get_int("channels", 3));
  const std::uint32_t flash =
      static_cast<std::uint32_t>(args.get_int("flash", 28));
  const bool as_json = args.get_bool("json", false);

  const media::Catalog catalog = media::ladder_catalog();
  const std::vector<LoadLevel> levels = {{"steady", viewers, 0},
                                         {"flash", viewers, flash}};
  const core::AllocatorKind kinds[] = {core::AllocatorKind::PaperBfs,
                                       core::AllocatorKind::MaxUtil,
                                       core::AllocatorKind::DetStream};

  std::vector<util::PeerId> sources, sinks;
  for (std::uint32_t c = 0; c < channels; ++c) sources.push_back(util::PeerId{c});

  if (!as_json) {
    std::cout << "E10 / streaming: continuity + deadline-miss vs placement "
                 "policy vs load\npeers="
              << peers << " channels=" << channels << " viewers=" << viewers
              << " flash-crowd=" << flash << " seed=" << seed << "\n\n";
  }
  util::Table t({"load", "allocator", "chunks", "continuity", "miss rate",
                 "late", "dropped", "rebuilds", "no-place", "jain(upload)",
                 "max uplink sat"});

  struct Row {
    std::string load;
    core::AllocatorKind kind;
    CellResult cell;
  };
  std::vector<Row> rows;

  for (const LoadLevel& level : levels) {
    workload::StreamingConfig scfg;
    scfg.seed = seed;
    scfg.channels = channels;
    scfg.viewers = level.viewers;
    scfg.flash_crowd = level.flash;
    // Sinks: one dedicated consumer peer per potential viewer.
    sinks.clear();
    for (std::uint32_t v = 0; v < level.viewers + level.flash; ++v) {
      sinks.push_back(util::PeerId{1000 + v});
    }
    const workload::StreamPlan plan =
        workload::StreamingScenario(catalog, scfg).build(sources, sinks);

    for (const core::AllocatorKind kind : kinds) {
      const CellResult cell = run_cell(kind, plan, peers, seed);
      rows.push_back({level.name, kind, cell});
      t.cell(level.name)
          .cell(std::string(core::allocator_name(kind)))
          .cell(cell.stats.chunks_generated)
          .cell(cell.continuity, 4)
          .cell(cell.miss_rate, 4)
          .cell(cell.stats.chunks_late)
          .cell(cell.stats.chunks_dropped)
          .cell(cell.stats.chain_rebuilds)
          .cell(cell.stats.placement_failures)
          .cell(cell.jain, 4)
          .cell(cell.max_saturation, 3)
          .end_row();
    }
  }

  if (as_json) {
    util::JsonWriter w(std::cout);
    w.begin_object();
    w.field("schema", "p2prm-bench-streaming/1");
    w.field("seed", seed);
    w.field("peers", static_cast<std::uint64_t>(peers));
    w.field("channels", channels);
    w.field("viewers", viewers);
    w.field("flash_crowd", flash);
    w.key("rows").begin_array();
    for (const Row& row : rows) {
      w.begin_object();
      w.field("load", row.load);
      w.field("allocator", core::allocator_name(row.kind));
      w.field("chunks_generated", row.cell.stats.chunks_generated);
      w.field("chunks_delivered", row.cell.stats.chunks_delivered);
      w.field("chunks_late", row.cell.stats.chunks_late);
      w.field("chunks_dropped", row.cell.stats.chunks_dropped);
      w.field("chains_built", row.cell.stats.chains_built);
      w.field("chain_rebuilds", row.cell.stats.chain_rebuilds);
      w.field("placement_failures", row.cell.stats.placement_failures);
      w.field("continuity_index", row.cell.continuity);
      w.field("deadline_miss_rate", row.cell.miss_rate);
      w.field("jain_upload_fairness", row.cell.jain);
      w.field("max_upload_saturation", row.cell.max_saturation);
      w.field("digest", row.cell.digest);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  if (args.get_bool("csv", false)) t.write_csv(std::cout);
  else t.print(std::cout);
  std::cout << "\nExpectation: paper-bfs spreads for fairness (highest Jain); "
               "det-stream minimizes per-chunk completion\ntime (lowest miss "
               "rate under flash load); max-util consolidates onto busy "
               "peers, keeping idle\nuplinks in reserve.\n";
  return 0;
}

// F3 — Figure 3: the task allocation algorithm.
//
// Measures the algorithm itself: wall-clock allocation latency, search
// effort (vertices popped / sequences enqueued) and candidate counts as the
// resource graph grows, for the paper's BFS and the exhaustive ablation.
#include <chrono>
#include <iostream>

#include "core/allocation.hpp"
#include "media/catalog.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace p2prm;

namespace {

struct Setup {
  sim::Simulator sim{1};
  net::Topology topo{};
  std::unique_ptr<net::Network> net;
  core::SystemConfig config{};
  core::InfoBase info{util::DomainId{0}, util::PeerId{0}};
  media::Catalog catalog = media::ladder_catalog();
  media::MediaObject object;
  util::Rng rng{99};

  explicit Setup(std::size_t peers, std::size_t services_per_peer) {
    net = std::make_unique<net::Network>(sim, topo);
    std::uint64_t service_id = 0;
    for (std::uint64_t p = 0; p < peers; ++p) {
      overlay::PeerSpec spec;
      spec.id = util::PeerId{p};
      spec.capacity_ops_per_s = rng.uniform(20e6, 100e6);
      topo.place_at(spec.id, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
      info.add_member(spec, 0);
      core::PeerAnnounce announce;
      announce.spec = spec;
      for (std::size_t s = 0; s < services_per_peer; ++s) {
        announce.services.push_back(core::ServiceOffering{
            util::ServiceId{service_id++},
            catalog.conversions()[rng.below(catalog.conversions().size())]});
      }
      info.add_inventory(announce);
      core::ProfilerReport report;
      report.sample.smoothed_load_ops =
          rng.uniform(0.0, 0.4) * spec.capacity_ops_per_s;
      info.record_report(spec.id, report, 0);
    }
    object = media::make_object(
        util::ObjectId{1},
        media::MediaFormat{media::Codec::MPEG2, media::kRes800x600, 512},
        10.0, rng);
    core::PeerAnnounce src;
    src.spec.id = util::PeerId{0};
    src.objects = {object};
    info.add_inventory(src);
  }

  core::AllocationRequest request() const {
    core::AllocationRequest r;
    r.task = util::TaskId{1};
    r.q.object = object.id;
    r.q.acceptable_formats = {
        media::MediaFormat{media::Codec::MPEG4, media::kRes640x480, 128}};
    r.q.deadline = util::seconds(300);
    r.sink = util::PeerId{0};
    return r;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const int repeats = static_cast<int>(args.get_int("repeats", 50));

  std::cout << "F3 / Figure 3: allocation algorithm cost vs. resource-graph "
               "size\n(exhaustive ablation capped at 64 peers)\n\n";
  util::Table t({"peers", "services", "allocator", "alloc time (us)",
                 "popped", "enqueued", "candidates", "feasible", "fairness"});

  for (const std::size_t peers : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    for (const auto kind :
         {core::AllocatorKind::PaperBfs, core::AllocatorKind::Exhaustive}) {
      if (kind == core::AllocatorKind::Exhaustive && peers > 64) continue;
      Setup setup(peers, 6);
      const auto request = setup.request();
      auto allocator = core::make_allocator(kind);

      // The exhaustive enumeration runs seconds per call at 64 peers; a
      // couple of repetitions suffice for timing it.
      const int reps =
          kind == core::AllocatorKind::Exhaustive ? std::min(repeats, 3)
                                                  : repeats;
      core::AllocationResult result;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        result = allocator->allocate(setup.info, *setup.net, setup.config,
                                     request, setup.rng);
      }
      const auto stop = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(stop - start).count() /
          reps;

      t.cell(peers)
          .cell(setup.info.resource_graph().service_count())
          .cell(std::string(core::allocator_name(kind)))
          .cell(us, 1)
          .cell(result.search.vertices_popped)
          .cell(result.search.sequences_enqueued)
          .cell(result.candidates_considered)
          .cell(result.candidates_feasible)
          .cell(result.found ? result.fairness_after : 0.0, 4)
          .end_row();
    }
  }
  if (args.get_bool("csv", false)) t.write_csv(std::cout);
  else t.print(std::cout);
  std::cout << "\nNote: Fig. 3's visited-vertex rule keeps the BFS linear in "
               "the number of service edges;\nthe exhaustive simple-path "
               "enumeration grows combinatorially and is the ablation bound.\n";
  return 0;
}

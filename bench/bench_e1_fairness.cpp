// E1 — "the load among the peers is fairly balanced".
//
// One 32-peer domain under a steady Poisson workload; compares the paper's
// fairness-maximizing allocator against min-hop, random and least-loaded
// baselines on ground-truth Jain fairness (measured by probing the actual
// processors, not the RM's own estimates) and deadline performance.
#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 1.2);
  const double measure_s = args.get_double("measure-s", 120);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E1", "Claim (§4.2): the RM keeps the load among the peers "
               "fairly balanced (Jain index, Eq. 1)");
  std::cout << "peers=" << peers << " arrival rate=" << rate
            << "/s measure=" << measure_s << "s seed=" << seed << "\n\n";

  util::Table t({"allocator", "cum fairness", "fairness (mean)", "goodput",
                 "miss ratio", "mean util", "submitted"});

  for (const auto kind :
       {core::AllocatorKind::PaperBfs, core::AllocatorKind::Exhaustive,
        core::AllocatorKind::MinHop, core::AllocatorKind::Random,
        core::AllocatorKind::LeastLoaded}) {
    WorldConfig config;
    config.peers = peers;
    config.system.seed = seed;
    config.system.allocator = kind;
    World world(config);
    world.bootstrap();

    metrics::LoadProbe probe(world.system(), util::milliseconds(500));
    probe.start();
    const auto submitted = world.run_poisson(
        rate, util::from_seconds(measure_s), util::seconds(60));
    probe.stop();

    const double t0 = 5.0;
    const double t1 = measure_s + 5.0;
    double min_fairness = 1.0;
    const auto& series = probe.fairness_series();
    for (std::size_t i = 0; i < series.count(); ++i) {
      if (series.time_at(i) >= t0 && series.time_at(i) < t1) {
        min_fairness = std::min(min_fairness, series.value_at(i));
      }
    }
    const auto& ledger = world.system().ledger();
    (void)min_fairness;
    t.cell(std::string(core::allocator_name(kind)))
        .cell(probe.cumulative_fairness(), 4)
        .cell(probe.mean_fairness(t0, t1), 4)
        .cell(ledger.goodput(), 4)
        .cell(ledger.miss_ratio(), 4)
        .cell(probe.mean_utilization(t0, t1), 3)
        .cell(submitted)
        .end_row();
  }
  emit(t, args);
  std::cout << "\nExpectation: paper-bfs (and its exhaustive ablation) hold "
               "the highest fairness;\nmin-hop concentrates load (lowest "
               "fairness); random sits between.\n";
  return 0;
}

// E5 — Least Laxity local scheduling (§2).
//
// "Our scheduling algorithm is based on the Least Laxity Scheduling (LLS)
// algorithm that exploits the deadlines of the applications and the actual
// computation and execution times on the processors."
//
// Single-processor utilization sweep comparing LLS against EDF, FIFO and
// static-importance priority on deadline miss ratio and preemption counts.
#include <iostream>

#include "sched/processor.hpp"
#include "sim/simulator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace p2prm;

namespace {

struct Outcome {
  double miss_ratio;
  double mean_lateness_s;  // over late jobs
  std::uint64_t preemptions;
};

Outcome run(sched::Policy policy, double load, std::uint64_t seed, int jobs,
            bool drop_hopeless = false) {
  sim::Simulator sim(seed);
  std::size_t missed = 0;
  double lateness = 0.0;
  sched::Processor cpu(
      sim,
      {.ops_per_second = 1e6,
       .policy = policy,
       .drop_hopeless_jobs = drop_hopeless},
      [&](const sched::Job& j, sched::JobStatus s) {
        if (s != sched::JobStatus::Completed) {
          ++missed;
          if (j.completed >= 0) {
            lateness += util::to_seconds(j.completed - j.absolute_deadline);
          }
        }
      });
  util::Rng rng(seed * 31 + 7);
  util::SimTime t = 0;
  for (int i = 0; i < jobs; ++i) {
    t += util::from_seconds(rng.exponential(1.0 / load));
    sched::Job j;
    j.id = util::JobId{static_cast<std::uint64_t>(i)};
    j.release = t;
    j.total_ops = rng.uniform(0.4e6, 1.6e6);  // mean 1s of work
    j.remaining_ops = j.total_ops;
    j.absolute_deadline = t + util::from_seconds(rng.uniform(1.5, 8.0));
    j.importance = rng.uniform(1.0, 10.0);
    sim.schedule_at(t, [&cpu, j] { cpu.submit(j); });
  }
  sim.run_until();
  return Outcome{static_cast<double>(missed) / jobs,
                 missed ? lateness / static_cast<double>(missed) : 0.0,
                 cpu.stats().preemptions};
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const int jobs = static_cast<int>(args.get_int("jobs", 2000));
  const int seeds = static_cast<int>(args.get_int("seeds", 5));

  std::cout << "E5: local scheduling policy sweep (single processor, "
            << jobs << " jobs x " << seeds << " seeds, deadline 1.5-8x mean "
            << "service time)\n\n";

  util::Table t({"offered load", "policy", "miss ratio", "mean lateness (s)",
                 "preemptions"});
  struct Variant {
    sched::Policy policy;
    bool drop;
    const char* label;
  };
  const Variant variants[] = {
      {sched::Policy::LeastLaxity, false, "LLS"},
      {sched::Policy::LeastLaxity, true, "LLS+shed"},
      {sched::Policy::WeightedLaxity, false, "WLLS"},
      {sched::Policy::EarliestDeadline, false, "EDF"},
      {sched::Policy::Fifo, false, "FIFO"},
      {sched::Policy::StaticImportance, false, "SP"},
  };
  for (const double load : {0.5, 0.7, 0.9, 1.1, 1.3}) {
    for (const auto& v : variants) {
      double miss = 0.0, late = 0.0, preempt = 0.0;
      for (int s = 1; s <= seeds; ++s) {
        const auto out =
            run(v.policy, load, static_cast<std::uint64_t>(s), jobs, v.drop);
        miss += out.miss_ratio;
        late += out.mean_lateness_s;
        preempt += static_cast<double>(out.preemptions);
      }
      t.cell(load, 2)
          .cell(v.label)
          .cell(miss / seeds, 4)
          .cell(late / seeds, 3)
          .cell(preempt / seeds, 0)
          .end_row();
    }
  }
  if (args.get_bool("csv", false)) t.write_csv(std::cout);
  else t.print(std::cout);
  std::cout << "\nExpectation: LLS and EDF track each other and beat FIFO/SP "
               "below saturation;\nabove saturation every keep-everything "
               "policy collapses (domino misses) while LLS+shed\n(drop jobs "
               "whose deadline is unreachable) keeps serving the schedulable "
               "subset.\nLLS pays preemptions — the classic LLF cost.\n";
  return 0;
}

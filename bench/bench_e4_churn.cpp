// E4 — "works effectively in ... dynamic environments" (§1, §4.1, §6).
//
// Sweeps churn intensity (mean session length) with half the departures
// being silent crashes, and toggles the backup-RM mechanism. Reports task
// outcomes, recovery activity and RM failovers survived.
#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 0.8);
  const double measure_s = args.get_double("measure-s", 120);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E4", "Claim: effective in dynamic environments — churn with "
               "crash failures, task recovery, backup-RM failover (§4.1)");
  std::cout << "peers=" << peers << " rate=" << rate
            << "/s crash fraction=0.5 measure=" << measure_s << "s\n\n";

  util::Table t({"mean session (s)", "backup RM", "departures", "rm deaths",
                 "goodput", "miss ratio", "failed", "recoveries",
                 "alive at end"});

  for (const double session_s : {600.0, 300.0, 120.0, 60.0}) {
    for (const bool backup : {true, false}) {
      WorldConfig config;
      config.peers = peers;
      config.system.seed = seed;
      config.system.enable_backup_rm = backup;
      World world(config);
      world.bootstrap();

      workload::ChurnConfig churn_config;
      churn_config.mean_session_s = session_s;
      churn_config.crash_fraction = 0.5;
      churn_config.respawn = true;
      workload::ChurnDriver churn(world.system(), world.factory(),
                                  churn_config);
      churn.track_all_alive();

      world.run_poisson(rate, util::from_seconds(measure_s),
                        util::seconds(60));
      churn.stop();

      const auto& ledger = world.system().ledger();
      const auto agg = metrics::aggregate_rm_stats(world.system());
      t.cell(session_s, 0)
          .cell(backup ? "on" : "off")
          .cell(churn.stats().departures)
          .cell(churn.stats().rm_departures)
          .cell(ledger.goodput(), 4)
          .cell(ledger.miss_ratio(), 4)
          .cell(ledger.failed())
          .cell(agg.recoveries_succeeded)
          .cell(world.system().alive_count())
          .end_row();
    }
  }
  emit(t, args);
  std::cout << "\nExpectation: goodput degrades gracefully as sessions "
               "shorten; disabling the backup RM\nhurts markedly once RMs "
               "start dying (orphaned members must rejoin from scratch).\n";
  return 0;
}

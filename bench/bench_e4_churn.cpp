// E4 — "works effectively in ... dynamic environments" (§1, §4.1, §6).
//
// Sweeps churn intensity (mean session length) with half the departures
// being silent crashes, and toggles the backup-RM mechanism. Reports task
// outcomes, recovery activity and RM failovers survived.
//
// --fault=loss+partition+crash-restart (any '+'-combination, or "none")
// switches to a focused fault-injection scenario instead of the churn
// sweep: churn is disabled (the fault plan is the dynamism) and the
// deterministic injector applies 10% uniform loss, a 10 s primary-RM
// partition window, and/or a primary-RM crash with later restart. --json=
// writes the machine-readable run summary (CI fault matrix artifact).
#include <fstream>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

namespace {

std::vector<std::string> split_fault_tokens(const std::string& spec) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find('+', pos), spec.size());
    tokens.push_back(spec.substr(pos, end - pos));
    pos = end + 1;
  }
  return tokens;
}

int run_fault_scenario(const util::Args& args, const std::string& fault_spec) {
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 0.8);
  const double measure_s = args.get_double("measure-s", 60);
  const double loss = args.get_double("loss", 0.1);
  const std::uint64_t seed = args.get_int("seed", 42);
  const std::string json_path = args.get("json", "");

  bool with_loss = false, with_partition = false, with_crash = false;
  for (const auto& token : split_fault_tokens(fault_spec)) {
    if (token == "loss") with_loss = true;
    else if (token == "partition") with_partition = true;
    else if (token == "crash-restart") with_crash = true;
    else {
      std::cerr << "unknown --fault token '" << token
                << "' (expected loss|partition|crash-restart, '+'-combined)\n";
      return 2;
    }
  }

  print_header("E4-fault",
               "Claim: protocol hardening (retry/timeout/backoff) sustains "
               "admission under injected faults (docs/FAULT_MODEL.md)");
  std::cout << "peers=" << peers << " rate=" << rate << "/s measure="
            << measure_s << "s seed=" << seed << " faults=" << fault_spec
            << (with_loss ? " (loss=" + std::to_string(loss) + ")" : "")
            << "\n\n";

  WorldConfig config;
  config.peers = peers;
  config.system.seed = seed;
  World world(config);
  world.bootstrap();

  // The plan's clock is absolute sim time; anchor events after bootstrap.
  const util::SimTime t0 = world.system().simulator().now();
  fault::FaultPlan plan;
  plan.seed = seed;
  if (with_loss) plan.default_link.drop_probability = loss;
  if (with_partition) {
    // Cut the primary RM off for 10 s mid-run: failover must kick in, and
    // the healed partition must reconverge (anti-entropy, epoch rules).
    plan.isolate_primary_rm(t0 + util::seconds(20), t0 + util::seconds(30));
  }
  if (with_crash) {
    // Kill the primary RM outright mid-run; restart the machine 15 s later.
    plan.crash_restart_primary_rm(t0 + util::seconds(25),
                                  t0 + util::seconds(40));
  }
  world.system().install_fault_plan(std::move(plan));
  auto& injector = *world.system().fault_injector();

  const std::size_t submitted = world.run_poisson(
      rate, util::from_seconds(measure_s), util::seconds(60));

  const auto& ledger = world.system().ledger();
  // Admission is measured at the origin (ledger), not from RM counters:
  // a crash-restarted RM loses its in-memory stats, but the user-visible
  // TaskAccept already happened.
  const double admission =
      submitted ? static_cast<double>(ledger.admitted()) /
                      static_cast<double>(submitted)
                : 0.0;

  util::Table t({"metric", "value"});
  t.cell("submitted").cell(submitted).end_row();
  t.cell("admitted").cell(ledger.admitted()).end_row();
  t.cell("admission ratio").cell(admission, 4).end_row();
  t.cell("goodput").cell(ledger.goodput(), 4).end_row();
  t.cell("miss ratio").cell(ledger.miss_ratio(), 4).end_row();
  t.cell("fault events").cell(injector.trace().size()).end_row();
  t.cell("trace fingerprint").cell(injector.trace_fingerprint()).end_row();
  emit(t, args);
  std::cout << '\n';
  emit(metrics::retry_table(world.system()), args);
  std::cout << '\n';
  emit(metrics::traffic_table(world.system().network().stats()), args);

  if (!json_path.empty()) {
    std::string json = metrics::metrics_json(world.system());
    // Append scenario identity + admission so the CI matrix artifact is
    // self-describing.
    json.erase(json.rfind('}'));
    json.pop_back();  // trailing newline
    json += ",\n  \"admission_ratio\": " + std::to_string(admission) +
            ",\n  \"seed\": " + std::to_string(seed) + ",\n  \"fault\": \"" +
            fault_spec + "\",\n  \"trace_fingerprint\": \"" +
            std::to_string(injector.trace_fingerprint()) + "\"\n}\n";
    std::ofstream out(json_path);
    out << json;
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 2;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }

  std::cout << "\nExpectation: retries + failover keep the admission ratio "
               ">= 0.90 despite the injected faults; the trace fingerprint "
               "is identical for identical (plan, seed).\n";
  return admission >= 0.90 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string fault_spec = args.get("fault", "none");
  if (fault_spec != "none" && !fault_spec.empty()) {
    return run_fault_scenario(args, fault_spec);
  }
  const std::size_t peers = args.get_int("peers", 32);
  const double rate = args.get_double("rate", 0.8);
  const double measure_s = args.get_double("measure-s", 120);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E4", "Claim: effective in dynamic environments — churn with "
               "crash failures, task recovery, backup-RM failover (§4.1)");
  std::cout << "peers=" << peers << " rate=" << rate
            << "/s crash fraction=0.5 measure=" << measure_s << "s\n\n";

  util::Table t({"mean session (s)", "backup RM", "departures", "rm deaths",
                 "goodput", "miss ratio", "failed", "recoveries",
                 "alive at end"});

  for (const double session_s : {600.0, 300.0, 120.0, 60.0}) {
    for (const bool backup : {true, false}) {
      WorldConfig config;
      config.peers = peers;
      config.system.seed = seed;
      config.system.enable_backup_rm = backup;
      World world(config);
      world.bootstrap();

      workload::ChurnConfig churn_config;
      churn_config.mean_session_s = session_s;
      churn_config.crash_fraction = 0.5;
      churn_config.respawn = true;
      workload::ChurnDriver churn(world.system(), world.factory(),
                                  churn_config);
      churn.track_all_alive();

      world.run_poisson(rate, util::from_seconds(measure_s),
                        util::seconds(60));
      churn.stop();

      const auto& ledger = world.system().ledger();
      const auto agg = metrics::aggregate_rm_stats(world.system());
      t.cell(session_s, 0)
          .cell(backup ? "on" : "off")
          .cell(churn.stats().departures)
          .cell(churn.stats().rm_departures)
          .cell(ledger.goodput(), 4)
          .cell(ledger.miss_ratio(), 4)
          .cell(ledger.failed())
          .cell(agg.recoveries_succeeded)
          .cell(world.system().alive_count())
          .end_row();
    }
  }
  emit(t, args);
  std::cout << "\nExpectation: goodput degrades gracefully as sessions "
               "shorten; disabling the backup RM\nhurts markedly once RMs "
               "start dying (orphaned members must rejoin from scratch).\n";
  return 0;
}

// E2 — "our proposed schemes scale well with respect to the number of
// peers".
//
// Grows the network from 16 to 512 peers with the per-peer arrival rate
// held constant, and reports deadline performance, fairness, per-task
// control overhead, per-RM control load and domain structure. A scalable
// design keeps the per-peer/per-task figures flat while domains multiply.
//
// Gate mode (--json=FILE [--gate-only]): replays a fixed sequence of
// allocation queries against one bootstrapped RM twice — path cache off,
// then on — and emits the search counters as machine-readable JSON. The
// counters are pure simulation quantities (no wall-clock), so two runs of
// the same binary produce byte-identical files; CI's perf-smoke job diffs
// the output against the committed BENCH_PR2.json baseline (see
// docs/BENCHMARKS.md).
//
// Parallel mode (--threads=N [--parallel-json=FILE]): partitions every RM's
// allocation-replay workload across the sharded engine's worker threads
// (ShardConcurrent mode, docs/PARALLELISM.md) and sweeps thread counts
// 1..N, reporting wall-clock speedup. The summed search counters are pure
// simulation quantities and must be identical at every thread count — the
// run aborts if they diverge. --parallel-json writes the sweep (plus
// hardware_threads, since speedup is bounded by physical cores) to FILE;
// the committed BENCH_PR5.json was produced this way.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <numeric>
#include <thread>
#include <vector>

#include "core/allocation.hpp"
#include "exp_common.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/parallel.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"

using namespace p2prm;
using namespace p2prm::bench;

namespace {

struct GateCounters {
  std::uint64_t vertices_popped = 0;
  std::uint64_t sequences_enqueued = 0;
  std::uint64_t candidates = 0;  // PathEvaluations constructed ("allocations")
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t found = 0;  // sanity: must match between off/on runs
};

// Replays `queries` identical allocation queries against the RM's info
// base without composing (loads never change, so the graph epoch is
// stable — the repeated-query regime the cache targets).
GateCounters run_gate_queries(core::System& system, core::InfoBase& info,
                              const media::Catalog& catalog,
                              std::size_t queries, bool cache_on,
                              std::uint64_t seed) {
  core::SystemConfig cfg = system.config();
  cfg.enable_path_cache = cache_on;
  info.path_cache().clear();
  const auto allocator = core::make_allocator(core::AllocatorKind::PaperBfs);
  util::Rng rng(seed);

  const auto objects = info.all_objects();
  const auto members = info.domain().member_ids();
  GateCounters c;
  for (std::size_t i = 0; i < queries; ++i) {
    const util::ObjectId object = objects[i % objects.size()];
    const auto* locs = info.locations(object);
    // Walk two sensible conversion steps down from the source format so
    // most queries require a real multi-hop Figure 3 search.
    media::MediaFormat target = locs->front().object.format;
    for (int depth = 0; depth < 2; ++depth) {
      const auto steps = catalog.conversions_from(target);
      if (steps.empty()) break;
      target = steps[(i + static_cast<std::size_t>(depth)) % steps.size()]
                   .output;
    }
    core::AllocationRequest request;
    request.task = util::TaskId{100000 + i};
    request.q.object = object;
    request.q.acceptable_formats = {target};
    request.q.deadline = util::seconds(120);
    request.sink = members[i % members.size()];
    request.now = system.simulator().now();
    request.submitted_at = request.now;

    const auto result =
        allocator->allocate(info, system.network(), cfg, request, rng);
    c.vertices_popped += result.search.vertices_popped;
    c.sequences_enqueued += result.search.sequences_enqueued;
    c.candidates += result.candidates_considered;
    c.cache_hits += result.search.cache_hits;
    c.cache_misses += result.search.cache_misses;
    if (result.found) ++c.found;
  }
  return c;
}

void write_counters(std::ostream& out, const char* name,
                    const GateCounters& c, std::size_t queries) {
  const auto per_query = [&](std::uint64_t n) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g",
                  static_cast<double>(n) / static_cast<double>(queries));
    return std::string(buf);
  };
  const double probes = static_cast<double>(c.cache_hits + c.cache_misses);
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.6g",
                probes > 0.0 ? static_cast<double>(c.cache_hits) / probes
                             : 0.0);
  out << "    \"" << name << "\": {\n"
      << "      \"vertices_popped\": " << c.vertices_popped << ",\n"
      << "      \"vertices_popped_per_query\": " << per_query(c.vertices_popped)
      << ",\n"
      << "      \"sequences_enqueued\": " << c.sequences_enqueued << ",\n"
      << "      \"allocations_per_query\": " << per_query(c.candidates)
      << ",\n"
      << "      \"cache_hits\": " << c.cache_hits << ",\n"
      << "      \"cache_misses\": " << c.cache_misses << ",\n"
      << "      \"cache_hit_rate\": " << rate << ",\n"
      << "      \"found\": " << c.found << "\n"
      << "    }";
}

void accumulate(GateCounters& into, const GateCounters& c) {
  into.vertices_popped += c.vertices_popped;
  into.sequences_enqueued += c.sequences_enqueued;
  into.candidates += c.candidates;
  into.cache_hits += c.cache_hits;
  into.cache_misses += c.cache_misses;
  into.found += c.found;
}

bool counters_equal(const GateCounters& a, const GateCounters& b) {
  return a.vertices_popped == b.vertices_popped &&
         a.sequences_enqueued == b.sequences_enqueued &&
         a.candidates == b.candidates && a.cache_hits == b.cache_hits &&
         a.cache_misses == b.cache_misses && a.found == b.found;
}

// One parallel replay: every RM's query batch runs as a single event on the
// RM's shard; shards execute concurrently under the engine's worker pool.
// Each batch touches only its own InfoBase/PathCache and a private Rng, so
// the work is shard-confined by construction and the summed counters cannot
// depend on the thread count or the shard placement.
struct StageNs {
  std::uint64_t execute_ns = 0;
  std::uint64_t mailbox_flush_ns = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t commit_drain_ns = 0;
  std::uint64_t window_plan_ns = 0;
};

struct ReplayOutcome {
  GateCounters counters;
  double wall_ms = 0.0;
  std::vector<double> rm_ms;  // per-RM batch cost, feeds LPT placement
  StageNs stages;
};

// Longest-processing-time-first shard placement from measured batch costs:
// heaviest batch goes to the least-loaded shard. Deterministic (ties break
// on the lower RM index / lower shard id).
std::vector<sim::ShardId> lpt_placement(const std::vector<double>& costs,
                                        unsigned threads) {
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  std::vector<double> bin(threads, 0.0);
  std::vector<sim::ShardId> shard(costs.size(), 0);
  for (const std::size_t i : order) {
    sim::ShardId best = 0;
    for (unsigned s = 1; s < threads; ++s) {
      if (bin[s] < bin[best]) best = static_cast<sim::ShardId>(s);
    }
    shard[i] = best;
    bin[best] += costs[i];
  }
  return shard;
}

ReplayOutcome run_parallel_replay(core::System& system,
                                  const std::vector<core::InfoBase*>& rms,
                                  const media::Catalog& catalog,
                                  std::size_t queries_per_rm, unsigned threads,
                                  std::uint64_t seed,
                                  const std::vector<sim::ShardId>* placement) {
  sim::ParallelConfig pc;
  pc.threads = threads;
  pc.lookahead = util::milliseconds(1);
  pc.mode = sim::ParallelMode::ShardConcurrent;
  sim::ParallelEngine eng(pc);

  ReplayOutcome out;
  out.rm_ms.assign(rms.size(), 0.0);
  std::vector<GateCounters> per_rm(rms.size());
  for (std::size_t i = 0; i < rms.size(); ++i) {
    const auto shard = placement != nullptr
                           ? (*placement)[i]
                           : static_cast<sim::ShardId>(i % threads);
    eng.schedule(shard, util::milliseconds(1) + static_cast<util::SimTime>(i),
                 [&system, &per_rm, &out, &catalog, rm = rms[i], i,
                  queries_per_rm, seed] {
                   const auto t0 = std::chrono::steady_clock::now();
                   per_rm[i] = run_gate_queries(system, *rm, catalog,
                                                queries_per_rm, true,
                                                seed + i);
                   const auto t1 = std::chrono::steady_clock::now();
                   out.rm_ms[i] =
                       std::chrono::duration<double, std::milli>(t1 - t0)
                           .count();
                 });
  }
  const auto start = std::chrono::steady_clock::now();
  eng.run_windows_until(util::seconds(1));
  const auto stop = std::chrono::steady_clock::now();

  for (const auto& c : per_rm) accumulate(out.counters, c);
  out.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();

  // Per-stage wall-clock, read back through the obs registry export (the
  // same counters docs/OBSERVABILITY.md consumers see).
  obs::MetricsRegistry reg;
  eng.publish(reg);
  for (const auto& s : reg.snapshot()) {
    if (s.name == "sim.parallel.stage.execute_ns") {
      out.stages.execute_ns = s.counter_value;
    } else if (s.name == "sim.parallel.stage.mailbox_flush_ns") {
      out.stages.mailbox_flush_ns = s.counter_value;
    } else if (s.name == "sim.parallel.stage.barrier_wait_ns") {
      out.stages.barrier_wait_ns = s.counter_value;
    } else if (s.name == "sim.parallel.stage.commit_drain_ns") {
      out.stages.commit_drain_ns = s.counter_value;
    } else if (s.name == "sim.parallel.stage.window_plan_ns") {
      out.stages.window_plan_ns = s.counter_value;
    }
  }
  return out;
}

// Deterministic data-layout counters (docs/BENCHMARKS.md): structural work
// quantities of the open-addressing map and the arena pool, independent of
// wall-clock. Computed before any simulation runs so the thread-local pool
// cache is in a known (empty) state.
struct MicroCounters {
  double flatmap_mean_probe = 0.0;
  std::uint64_t pool_fresh = 0;
  std::uint64_t pool_reused = 0;
  double pool_reuse_rate = 0.0;
};

MicroCounters run_micro_counters() {
  MicroCounters mc;

  // FlatMap probe depth after a churny insert/erase sequence.
  util::FlatMap<util::PeerId, std::uint64_t> map;
  util::Rng rng(0xC0FFEE);
  std::vector<util::PeerId> keys;
  keys.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    keys.push_back(util::PeerId{rng.next()});
    map[keys.back()] = i;
  }
  for (std::size_t i = 0; i < keys.size(); i += 3) map.erase(keys[i]);
  std::uint64_t probes = 0;
  std::uint64_t live = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 == 0) continue;
    probes += map.probe_length(keys[i]);
    ++live;
  }
  mc.flatmap_mean_probe =
      live > 0 ? static_cast<double>(probes) / static_cast<double>(live) : 0.0;

  // Arena pool reuse over a steady-state alloc/free cycle (one 64-byte
  // class): first round faults blocks in, the rest recycle the freelist.
  const auto before = util::Pool::stats();
  std::vector<void*> blocks;
  blocks.reserve(256);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 256; ++i) blocks.push_back(util::Pool::allocate(48));
    for (void* p : blocks) util::Pool::deallocate(p, 48);
    blocks.clear();
  }
  const auto after = util::Pool::stats();
  mc.pool_fresh = after.fresh - before.fresh;
  mc.pool_reused = after.reused - before.reused;
  const double total =
      static_cast<double>(mc.pool_fresh + mc.pool_reused);
  mc.pool_reuse_rate =
      total > 0.0 ? static_cast<double>(mc.pool_reused) / total : 0.0;
  return mc;
}

// Peak resident set in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// Scale mode (--peers=N [--scale-json=FILE]): the million-peer ceiling run
// (docs/SCALING.md). A small live core bootstraps normally; the remaining
// population registers as lazy rows (flat registry only — no PeerNode, no
// endpoint, no join traffic). Waves of edge peers then materialize, carry a
// Poisson workload, and demote back to rows once idle. Reports the two
// numbers the PR-7 gate records: idle bytes/peer of the flat state and
// simulation events/sec through the active phase.
int run_scale_mode(std::size_t total_peers, std::size_t live_core,
                   std::size_t waves, std::size_t wave_peers, double run_s,
                   double rate_per_peer, std::uint64_t seed,
                   const std::string& json_path, const util::Args& args) {
  WorldConfig config;
  config.peers = live_core;
  config.system.seed = seed;
  config.system.max_domain_size = 32;
  // Million-peer mode runs fully hierarchical: aggregate-backed admission
  // plus aggregate-carrying summaries (O(domains) inter-RM state).
  config.system.enable_hierarchical_infobase = true;
  config.system.gossip_domain_aggregates = true;
  World world(config);

  print_header("E2-scale", "Single-process peer ceiling: flat rows + lazy "
               "materialization + hierarchical gossip (docs/SCALING.md)");
  std::cout << "peers=" << total_peers << " live_core=" << live_core
            << " waves=" << waves << "x" << wave_peers
            << " run/wave=" << run_s << "s seed=" << seed << "\n\n";

  const auto reg_start = std::chrono::steady_clock::now();
  world.bootstrap();
  core::System& system = world.system();
  system.reserve_peers(total_peers);

  // Edge population: spec drawn from the same heterogeneity model as the
  // core, carrying no inventory (consumers). Deliberately bypasses
  // per-peer object provisioning — an idle peer must cost rows, not heap.
  util::Rng lazy_rng(seed * 7919 + 101);
  std::vector<util::PeerId> lazy;
  const std::size_t lazy_count =
      total_peers > live_core ? total_peers - live_core : 0;
  lazy.reserve(lazy_count);
  for (std::size_t i = 0; i < lazy_count; ++i) {
    const auto spec = workload::draw_peer_spec(config.het, lazy_rng,
                                               system.simulator().now());
    lazy.push_back(system.add_lazy_peer(spec, {}));
  }
  const auto reg_stop = std::chrono::steady_clock::now();
  const double reg_s =
      std::chrono::duration<double>(reg_stop - reg_start).count();

  const std::size_t footprint = system.peer_registry().footprint_bytes();
  const double bytes_per_peer =
      static_cast<double>(footprint) /
      static_cast<double>(std::max<std::size_t>(1, system.peer_ids().size()));

  // Active phase: waves of edge peers join, work, go idle, demote.
  const std::uint64_t events_before = system.simulator().events_executed();
  const auto active_start = std::chrono::steady_clock::now();
  std::size_t materialized_total = 0;
  std::size_t demoted_total = 0;
  std::size_t materialized_peak = system.peer_registry().materialized();
  for (std::size_t w = 0; w < waves && !lazy.empty(); ++w) {
    // Stride-sample the wave across the whole lazy range so row locality
    // does not flatter the run.
    const std::size_t stride =
        std::max<std::size_t>(1, lazy.size() / std::max<std::size_t>(
                                                   1, wave_peers));
    std::size_t touched = 0;
    for (std::size_t i = w; i < lazy.size() && touched < wave_peers;
         i += stride) {
      if (system.materialize_peer(lazy[i])) ++touched;
    }
    materialized_total += touched;
    world.run_poisson(
        rate_per_peer * static_cast<double>(live_core + wave_peers),
        util::from_seconds(run_s), util::seconds(2));
    materialized_peak =
        std::max(materialized_peak, system.peer_registry().materialized());
    demoted_total += system.demote_idle_peers(util::seconds(2));
  }
  const auto active_stop = std::chrono::steady_clock::now();
  const double active_s =
      std::chrono::duration<double>(active_stop - active_start).count();
  const std::uint64_t events =
      system.simulator().events_executed() - events_before;
  const double events_per_sec =
      active_s > 0.0 ? static_cast<double>(events) / active_s : 0.0;
  const double rss = peak_rss_mib();

  util::Table t({"metric", "value"});
  t.cell("total peers").cell(system.peer_ids().size()).end_row();
  t.cell("registry bytes/peer").cell(bytes_per_peer, 1).end_row();
  t.cell("registration wall (s)").cell(reg_s, 1).end_row();
  t.cell("materialized (waves)").cell(materialized_total).end_row();
  t.cell("materialized peak").cell(materialized_peak).end_row();
  t.cell("demoted back to rows").cell(demoted_total).end_row();
  t.cell("sim events (active)").cell(events).end_row();
  t.cell("events/sec (wall)").cell(events_per_sec, 0).end_row();
  t.cell("peak RSS (MiB)").cell(rss, 0).end_row();
  emit(t, args);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char b[64], e[64], r[64], g[64], a[64];
    std::snprintf(b, sizeof b, "%.4g", bytes_per_peer);
    std::snprintf(e, sizeof e, "%.4g", events_per_sec);
    std::snprintf(r, sizeof r, "%.4g", rss);
    std::snprintf(g, sizeof g, "%.4g", reg_s);
    std::snprintf(a, sizeof a, "%.4g", active_s);
    out << "{\n"
        << "  \"schema\": \"p2prm-bench-scale/1\",\n"
        << "  \"bench\": \"e2_scalability\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"peers_total\": " << system.peer_ids().size() << ",\n"
        << "  \"peers_live_core\": " << live_core << ",\n"
        << "  \"waves\": " << waves << ",\n"
        << "  \"wave_peers\": " << wave_peers << ",\n"
        << "  \"registry_footprint_bytes\": " << footprint << ",\n"
        << "  \"idle_bytes_per_peer\": " << b << ",\n"
        << "  \"registration_wall_s\": " << g << ",\n"
        << "  \"materialized_total\": " << materialized_total << ",\n"
        << "  \"materialized_peak\": " << materialized_peak << ",\n"
        << "  \"demoted\": " << demoted_total << ",\n"
        << "  \"events_executed\": " << events << ",\n"
        << "  \"active_wall_s\": " << a << ",\n"
        << "  \"events_per_sec\": " << e << ",\n"
        << "  \"peak_rss_mib\": " << r << ",\n"
        << "  \"notes\": \"idle_bytes_per_peer counts flat registry rows + "
           "id map only (PeerRegistry::footprint_bytes); nodes and stashes "
           "are excluded by design — see docs/SCALING.md budget table\"\n"
        << "}\n";
    std::cout << "\nscale run written to " << json_path << "\n";
  }
  std::cout << "\nExpectation: idle bytes/peer stays under the documented "
               "128 B budget and is independent of total population; "
               "events/sec reflects only the materialized working set.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const double rate_per_peer = args.get_double("rate-per-peer", 0.03);
  const double measure_s = args.get_double("measure-s", 60);
  const std::uint64_t seed = args.get_int("seed", 42);
  const std::size_t max_peers = args.get_int("max-peers", 512);
  const std::string json_path = args.get("json", "");
  const bool gate_only = args.get_bool("gate-only", false);
  const std::size_t gate_queries = args.get_int("gate-queries", 4096);
  const std::size_t gate_peers = args.get_int("gate-peers", 64);
  const auto par_threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::string par_json = args.get("parallel-json", "");
  const auto repeats =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("repeats", 5)));
  const std::size_t scale_peers = args.get_int("peers", 0);

  if (scale_peers > 0) {
    return run_scale_mode(
        scale_peers, args.get_int("scale-live", 512),
        args.get_int("scale-waves", 4), args.get_int("scale-wave-peers", 2000),
        args.get_double("scale-run-s", 5.0), rate_per_peer, seed,
        args.get("scale-json", ""), args);
  }

  if (par_threads > 0) {
    // Computed first: the pool counters depend on the thread-local cache
    // being empty, which only holds before any simulation has run.
    const MicroCounters micro = run_micro_counters();
    WorldConfig config;
    config.peers = gate_peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    world.bootstrap();
    core::System& system = world.system();

    // Every RM with a populated info base, in peer-id order (deterministic
    // shard assignment and counter order).
    std::vector<core::InfoBase*> rms;
    for (const auto id : system.peer_ids()) {
      auto* node = system.peer(id);
      if (node == nullptr || !node->alive()) continue;
      auto* rm = node->resource_manager();
      if (rm == nullptr || rm->info().all_objects().empty()) continue;
      rms.push_back(&rm->info());
    }
    if (rms.empty()) {
      std::cerr << "parallel: no RM with objects after bootstrap\n";
      return 1;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const bool oversubscribed = hw > 0 && hw < par_threads;
    print_header("E2-parallel",
                 "Allocation-replay throughput on the sharded engine "
                 "(docs/PARALLELISM.md)");
    std::cout << "peers=" << gate_peers << " rms=" << rms.size()
              << " queries/rm=" << gate_queries << " repeats=" << repeats
              << " hardware_threads=" << hw
              << (oversubscribed ? " (OVERSUBSCRIBED: threads > cores)" : "")
              << "\n\n";

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t < par_threads; t *= 2) sweep.push_back(t);
    sweep.push_back(par_threads);

    util::Table t({"threads", "wall (ms, median)", "speedup", "queries/s",
                   "vertices_popped"});
    // Median-of-repeats outcome per thread count (the median run's stage
    // timers ride along with its wall time).
    std::vector<ReplayOutcome> outcomes;
    for (const unsigned threads : sweep) {
      // The warm-up pass absorbs first-touch effects and measures per-RM
      // batch cost; the timed passes place batches by LPT from those costs
      // (heaviest batch onto the least-loaded shard).
      const ReplayOutcome warm = run_parallel_replay(
          system, rms, world.catalog(), gate_queries, threads, seed, nullptr);
      const auto placement = lpt_placement(warm.rm_ms, threads);
      std::vector<ReplayOutcome> runs;
      for (std::size_t r = 0; r < repeats; ++r) {
        runs.push_back(run_parallel_replay(system, rms, world.catalog(),
                                           gate_queries, threads, seed,
                                           &placement));
        const GateCounters& expect =
            outcomes.empty() ? runs.front().counters
                             : outcomes.front().counters;
        if (!counters_equal(runs.back().counters, expect)) {
          std::cerr << "parallel: counters diverge at " << threads
                    << " threads (vertices_popped "
                    << expect.vertices_popped << " vs "
                    << runs.back().counters.vertices_popped << ")\n";
          return 1;
        }
      }
      std::vector<std::size_t> by_wall(runs.size());
      std::iota(by_wall.begin(), by_wall.end(), std::size_t{0});
      std::sort(by_wall.begin(), by_wall.end(),
                [&](std::size_t a, std::size_t b) {
                  return runs[a].wall_ms < runs[b].wall_ms;
                });
      outcomes.push_back(runs[by_wall[runs.size() / 2]]);
      const auto& o = outcomes.back();
      const double total_queries =
          static_cast<double>(rms.size() * gate_queries);
      t.cell(threads)
          .cell(o.wall_ms, 1)
          .cell(outcomes.front().wall_ms / o.wall_ms, 2)
          .cell(total_queries / (o.wall_ms / 1000.0), 0)
          .cell(o.counters.vertices_popped)
          .end_row();
    }
    emit(t, args);

    if (!par_json.empty()) {
      std::ofstream out(par_json);
      out << "{\n"
          << "  \"schema\": \"p2prm-bench-parallel/2\",\n"
          << "  \"bench\": \"e2_scalability\",\n"
          << "  \"seed\": " << seed << ",\n"
          << "  \"peers\": " << gate_peers << ",\n"
          << "  \"rms\": " << rms.size() << ",\n"
          << "  \"queries_per_rm\": " << gate_queries << ",\n"
          << "  \"repeats\": " << repeats << ",\n"
          << "  \"hardware_threads\": " << hw << ",\n"
          << "  \"oversubscribed\": " << (oversubscribed ? "true" : "false")
          << ",\n"
          << "  \"counters_identical_across_threads\": true,\n"
          << "  \"vertices_popped\": "
          << outcomes.front().counters.vertices_popped << ",\n"
          << "  \"found\": " << outcomes.front().counters.found << ",\n";
      char fmt[64];
      std::snprintf(fmt, sizeof fmt, "%.4g", micro.flatmap_mean_probe);
      out << "  \"micro\": {\n"
          << "    \"flatmap_mean_probe\": " << fmt << ",\n"
          << "    \"pool_fresh\": " << micro.pool_fresh << ",\n"
          << "    \"pool_reused\": " << micro.pool_reused << ",\n";
      std::snprintf(fmt, sizeof fmt, "%.4g", micro.pool_reuse_rate);
      out << "    \"pool_reuse_rate\": " << fmt << "\n"
          << "  },\n"
          << "  \"sweep\": [\n";
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        char speedup[64];
        std::snprintf(speedup, sizeof speedup, "%.4g",
                      outcomes.front().wall_ms / outcomes[i].wall_ms);
        char wall[64];
        std::snprintf(wall, sizeof wall, "%.4g", outcomes[i].wall_ms);
        const StageNs& st = outcomes[i].stages;
        out << "    {\"threads\": " << sweep[i] << ", \"wall_ms\": " << wall
            << ", \"speedup\": " << speedup
            << ",\n     \"stage\": {\"execute_ns\": " << st.execute_ns
            << ", \"mailbox_flush_ns\": " << st.mailbox_flush_ns
            << ", \"barrier_wait_ns\": " << st.barrier_wait_ns
            << ", \"commit_drain_ns\": " << st.commit_drain_ns
            << ", \"window_plan_ns\": " << st.window_plan_ns << "}}"
            << (i + 1 < sweep.size() ? ",\n" : "\n");
      }
      out << "  ]\n}\n";
      std::cout << "\nparallel sweep written to " << par_json << "\n";
    }
    std::cout << "\nExpectation: speedup approaches min(threads, "
                 "hardware_threads, active RMs); counters are identical at "
                 "every thread count (the determinism contract).\n";
    return 0;
  }

  if (!json_path.empty()) {
    WorldConfig config;
    config.peers = gate_peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    world.bootstrap();
    core::System& system = world.system();

    // Deterministic RM choice: the one seeing the most services (biggest
    // resource graph), ties broken by lowest peer id.
    core::InfoBase* info = nullptr;
    for (const auto id : system.peer_ids()) {
      auto* node = system.peer(id);
      if (node == nullptr || !node->alive()) continue;
      auto* rm = node->resource_manager();
      if (rm == nullptr) continue;
      if (info == nullptr || rm->info().resource_graph().service_count() >
                                 info->resource_graph().service_count()) {
        info = &rm->info();
      }
    }
    if (info == nullptr || info->all_objects().empty()) {
      std::cerr << "gate: no RM with objects after bootstrap\n";
      return 1;
    }

    const auto nocache = run_gate_queries(system, *info, world.catalog(),
                                          gate_queries, false, seed);
    const auto cached = run_gate_queries(system, *info, world.catalog(),
                                         gate_queries, true, seed);
    char reduction[64];
    std::snprintf(reduction, sizeof reduction, "%.6g",
                  cached.vertices_popped > 0
                      ? static_cast<double>(nocache.vertices_popped) /
                            static_cast<double>(cached.vertices_popped)
                      : 0.0);

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"schema\": \"p2prm-bench-gate/1\",\n"
        << "  \"bench\": \"e2_scalability\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"gate\": {\n"
        << "    \"peers\": " << gate_peers << ",\n"
        << "    \"queries\": " << gate_queries << ",\n";
    write_counters(out, "nocache", nocache, gate_queries);
    out << ",\n";
    write_counters(out, "cache", cached, gate_queries);
    out << ",\n    \"vertices_popped_reduction\": " << reduction << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "gate: " << gate_queries << " queries over " << gate_peers
              << " peers -> vertices_popped " << nocache.vertices_popped
              << " (cache off) vs " << cached.vertices_popped
              << " (cache on), reduction " << reduction << "x, written to "
              << json_path << "\n";
    if (nocache.found != cached.found ||
        nocache.candidates != cached.candidates) {
      std::cerr << "gate: cache on/off result divergence (found "
                << nocache.found << " vs " << cached.found << ", candidates "
                << nocache.candidates << " vs " << cached.candidates << ")\n";
      return 1;
    }
    if (gate_only) return 0;
  }

  print_header("E2", "Claim (§1, §6): the architecture scales well with "
               "respect to the number of peers");
  std::cout << "arrival rate=" << rate_per_peer << "/s per peer, measure="
            << measure_s << "s, seed=" << seed << "\n\n";

  util::Table t({"peers", "domains", "submitted", "goodput", "miss ratio",
                 "cum fairness", "ctrl KB/task", "RM msgs/s/domain",
                 "wall (ms)"});

  for (std::size_t peers = 16; peers <= max_peers; peers *= 2) {
    WorldConfig config;
    config.peers = peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    const auto wall_start = std::chrono::steady_clock::now();
    world.bootstrap();

    metrics::LoadProbe probe(world.system(), util::seconds(1));
    probe.start();
    world.system().network().reset_stats();
    const auto submitted =
        world.run_poisson(rate_per_peer * static_cast<double>(peers),
                          util::from_seconds(measure_s), util::seconds(60));
    probe.stop();
    const auto wall_stop = std::chrono::steady_clock::now();

    const auto& ledger = world.system().ledger();
    const auto domains = world.system().domains();
    const auto split =
        metrics::split_traffic(world.system().network().stats());
    // Messages an RM handles per second: control messages divided across
    // domains and the measured window.
    const double rm_msgs =
        static_cast<double>(split.control_messages) /
        std::max<std::size_t>(domains.size(), 1) / (measure_s + 60.0);

    t.cell(peers)
        .cell(domains.size())
        .cell(submitted)
        .cell(ledger.goodput(), 4)
        .cell(ledger.miss_ratio(), 4)
        .cell(probe.cumulative_fairness(), 4)
        .cell(control_bytes_per_task(world.system(), submitted) / 1024.0, 2)
        .cell(rm_msgs, 1)
        .cell(std::chrono::duration<double, std::milli>(wall_stop - wall_start)
                  .count(),
              0)
        .end_row();
  }
  emit(t, args);
  std::cout << "\nExpectation: goodput, fairness and ctrl KB/task stay ~flat "
               "as peers grow;\ndomains scale out (one RM per "
               "max_domain_size peers) and per-RM load stays bounded.\n";
  return 0;
}

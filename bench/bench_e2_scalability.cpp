// E2 — "our proposed schemes scale well with respect to the number of
// peers".
//
// Grows the network from 16 to 512 peers with the per-peer arrival rate
// held constant, and reports deadline performance, fairness, per-task
// control overhead, per-RM control load and domain structure. A scalable
// design keeps the per-peer/per-task figures flat while domains multiply.
#include <chrono>

#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const double rate_per_peer = args.get_double("rate-per-peer", 0.03);
  const double measure_s = args.get_double("measure-s", 60);
  const std::uint64_t seed = args.get_int("seed", 42);
  const std::size_t max_peers = args.get_int("max-peers", 512);

  print_header("E2", "Claim (§1, §6): the architecture scales well with "
               "respect to the number of peers");
  std::cout << "arrival rate=" << rate_per_peer << "/s per peer, measure="
            << measure_s << "s, seed=" << seed << "\n\n";

  util::Table t({"peers", "domains", "submitted", "goodput", "miss ratio",
                 "cum fairness", "ctrl KB/task", "RM msgs/s/domain",
                 "wall (ms)"});

  for (std::size_t peers = 16; peers <= max_peers; peers *= 2) {
    WorldConfig config;
    config.peers = peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    const auto wall_start = std::chrono::steady_clock::now();
    world.bootstrap();

    metrics::LoadProbe probe(world.system(), util::seconds(1));
    probe.start();
    world.system().network().reset_stats();
    const auto submitted =
        world.run_poisson(rate_per_peer * static_cast<double>(peers),
                          util::from_seconds(measure_s), util::seconds(60));
    probe.stop();
    const auto wall_stop = std::chrono::steady_clock::now();

    const auto& ledger = world.system().ledger();
    const auto domains = world.system().domains();
    const auto split =
        metrics::split_traffic(world.system().network().stats());
    // Messages an RM handles per second: control messages divided across
    // domains and the measured window.
    const double rm_msgs =
        static_cast<double>(split.control_messages) /
        std::max<std::size_t>(domains.size(), 1) / (measure_s + 60.0);

    t.cell(peers)
        .cell(domains.size())
        .cell(submitted)
        .cell(ledger.goodput(), 4)
        .cell(ledger.miss_ratio(), 4)
        .cell(probe.cumulative_fairness(), 4)
        .cell(control_bytes_per_task(world.system(), submitted) / 1024.0, 2)
        .cell(rm_msgs, 1)
        .cell(std::chrono::duration<double, std::milli>(wall_stop - wall_start)
                  .count(),
              0)
        .end_row();
  }
  emit(t, args);
  std::cout << "\nExpectation: goodput, fairness and ctrl KB/task stay ~flat "
               "as peers grow;\ndomains scale out (one RM per "
               "max_domain_size peers) and per-RM load stays bounded.\n";
  return 0;
}

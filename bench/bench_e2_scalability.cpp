// E2 — "our proposed schemes scale well with respect to the number of
// peers".
//
// Grows the network from 16 to 512 peers with the per-peer arrival rate
// held constant, and reports deadline performance, fairness, per-task
// control overhead, per-RM control load and domain structure. A scalable
// design keeps the per-peer/per-task figures flat while domains multiply.
//
// Gate mode (--json=FILE [--gate-only]): replays a fixed sequence of
// allocation queries against one bootstrapped RM twice — path cache off,
// then on — and emits the search counters as machine-readable JSON. The
// counters are pure simulation quantities (no wall-clock), so two runs of
// the same binary produce byte-identical files; CI's perf-smoke job diffs
// the output against the committed BENCH_PR2.json baseline (see
// docs/BENCHMARKS.md).
//
// Parallel mode (--threads=N [--parallel-json=FILE]): partitions every RM's
// allocation-replay workload across the sharded engine's worker threads
// (ShardConcurrent mode, docs/PARALLELISM.md) and sweeps thread counts
// 1..N, reporting wall-clock speedup. The summed search counters are pure
// simulation quantities and must be identical at every thread count — the
// run aborts if they diverge. --parallel-json writes the sweep (plus
// hardware_threads, since speedup is bounded by physical cores) to FILE;
// the committed BENCH_PR5.json was produced this way.
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "core/allocation.hpp"
#include "exp_common.hpp"
#include "sim/parallel.hpp"

using namespace p2prm;
using namespace p2prm::bench;

namespace {

struct GateCounters {
  std::uint64_t vertices_popped = 0;
  std::uint64_t sequences_enqueued = 0;
  std::uint64_t candidates = 0;  // PathEvaluations constructed ("allocations")
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t found = 0;  // sanity: must match between off/on runs
};

// Replays `queries` identical allocation queries against the RM's info
// base without composing (loads never change, so the graph epoch is
// stable — the repeated-query regime the cache targets).
GateCounters run_gate_queries(core::System& system, core::InfoBase& info,
                              const media::Catalog& catalog,
                              std::size_t queries, bool cache_on,
                              std::uint64_t seed) {
  core::SystemConfig cfg = system.config();
  cfg.enable_path_cache = cache_on;
  info.path_cache().clear();
  const auto allocator = core::make_allocator(core::AllocatorKind::PaperBfs);
  util::Rng rng(seed);

  const auto objects = info.all_objects();
  const auto members = info.domain().member_ids();
  GateCounters c;
  for (std::size_t i = 0; i < queries; ++i) {
    const util::ObjectId object = objects[i % objects.size()];
    const auto* locs = info.locations(object);
    // Walk two sensible conversion steps down from the source format so
    // most queries require a real multi-hop Figure 3 search.
    media::MediaFormat target = locs->front().object.format;
    for (int depth = 0; depth < 2; ++depth) {
      const auto steps = catalog.conversions_from(target);
      if (steps.empty()) break;
      target = steps[(i + static_cast<std::size_t>(depth)) % steps.size()]
                   .output;
    }
    core::AllocationRequest request;
    request.task = util::TaskId{100000 + i};
    request.q.object = object;
    request.q.acceptable_formats = {target};
    request.q.deadline = util::seconds(120);
    request.sink = members[i % members.size()];
    request.now = system.simulator().now();
    request.submitted_at = request.now;

    const auto result =
        allocator->allocate(info, system.network(), cfg, request, rng);
    c.vertices_popped += result.search.vertices_popped;
    c.sequences_enqueued += result.search.sequences_enqueued;
    c.candidates += result.candidates_considered;
    c.cache_hits += result.search.cache_hits;
    c.cache_misses += result.search.cache_misses;
    if (result.found) ++c.found;
  }
  return c;
}

void write_counters(std::ostream& out, const char* name,
                    const GateCounters& c, std::size_t queries) {
  const auto per_query = [&](std::uint64_t n) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g",
                  static_cast<double>(n) / static_cast<double>(queries));
    return std::string(buf);
  };
  const double probes = static_cast<double>(c.cache_hits + c.cache_misses);
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.6g",
                probes > 0.0 ? static_cast<double>(c.cache_hits) / probes
                             : 0.0);
  out << "    \"" << name << "\": {\n"
      << "      \"vertices_popped\": " << c.vertices_popped << ",\n"
      << "      \"vertices_popped_per_query\": " << per_query(c.vertices_popped)
      << ",\n"
      << "      \"sequences_enqueued\": " << c.sequences_enqueued << ",\n"
      << "      \"allocations_per_query\": " << per_query(c.candidates)
      << ",\n"
      << "      \"cache_hits\": " << c.cache_hits << ",\n"
      << "      \"cache_misses\": " << c.cache_misses << ",\n"
      << "      \"cache_hit_rate\": " << rate << ",\n"
      << "      \"found\": " << c.found << "\n"
      << "    }";
}

void accumulate(GateCounters& into, const GateCounters& c) {
  into.vertices_popped += c.vertices_popped;
  into.sequences_enqueued += c.sequences_enqueued;
  into.candidates += c.candidates;
  into.cache_hits += c.cache_hits;
  into.cache_misses += c.cache_misses;
  into.found += c.found;
}

bool counters_equal(const GateCounters& a, const GateCounters& b) {
  return a.vertices_popped == b.vertices_popped &&
         a.sequences_enqueued == b.sequences_enqueued &&
         a.candidates == b.candidates && a.cache_hits == b.cache_hits &&
         a.cache_misses == b.cache_misses && a.found == b.found;
}

// One parallel replay: every RM's query batch runs as a single event on the
// RM's shard (rm index mod threads); shards execute concurrently under the
// engine's worker pool. Each batch touches only its own InfoBase/PathCache
// and a private Rng, so the work is shard-confined by construction and the
// summed counters cannot depend on the thread count.
struct ReplayOutcome {
  GateCounters counters;
  double wall_ms = 0.0;
};

ReplayOutcome run_parallel_replay(core::System& system,
                                  const std::vector<core::InfoBase*>& rms,
                                  const media::Catalog& catalog,
                                  std::size_t queries_per_rm, unsigned threads,
                                  std::uint64_t seed) {
  sim::ParallelConfig pc;
  pc.threads = threads;
  pc.lookahead = util::milliseconds(1);
  pc.mode = sim::ParallelMode::ShardConcurrent;
  sim::ParallelEngine eng(pc);

  std::vector<GateCounters> per_rm(rms.size());
  for (std::size_t i = 0; i < rms.size(); ++i) {
    const auto shard = static_cast<sim::ShardId>(i % threads);
    eng.schedule(shard, util::milliseconds(1) + static_cast<util::SimTime>(i),
                 [&system, &per_rm, &catalog, rm = rms[i], i, queries_per_rm,
                  seed] {
                   per_rm[i] = run_gate_queries(system, *rm, catalog,
                                                queries_per_rm, true,
                                                seed + i);
                 });
  }
  const auto start = std::chrono::steady_clock::now();
  eng.run_windows_until(util::seconds(1));
  const auto stop = std::chrono::steady_clock::now();

  ReplayOutcome out;
  for (const auto& c : per_rm) accumulate(out.counters, c);
  out.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const double rate_per_peer = args.get_double("rate-per-peer", 0.03);
  const double measure_s = args.get_double("measure-s", 60);
  const std::uint64_t seed = args.get_int("seed", 42);
  const std::size_t max_peers = args.get_int("max-peers", 512);
  const std::string json_path = args.get("json", "");
  const bool gate_only = args.get_bool("gate-only", false);
  const std::size_t gate_queries = args.get_int("gate-queries", 4096);
  const std::size_t gate_peers = args.get_int("gate-peers", 64);
  const auto par_threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::string par_json = args.get("parallel-json", "");

  if (par_threads > 0) {
    WorldConfig config;
    config.peers = gate_peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    world.bootstrap();
    core::System& system = world.system();

    // Every RM with a populated info base, in peer-id order (deterministic
    // shard assignment and counter order).
    std::vector<core::InfoBase*> rms;
    for (const auto id : system.peer_ids()) {
      auto* node = system.peer(id);
      if (node == nullptr || !node->alive()) continue;
      auto* rm = node->resource_manager();
      if (rm == nullptr || rm->info().all_objects().empty()) continue;
      rms.push_back(&rm->info());
    }
    if (rms.empty()) {
      std::cerr << "parallel: no RM with objects after bootstrap\n";
      return 1;
    }

    print_header("E2-parallel",
                 "Allocation-replay throughput on the sharded engine "
                 "(docs/PARALLELISM.md)");
    std::cout << "peers=" << gate_peers << " rms=" << rms.size()
              << " queries/rm=" << gate_queries
              << " hardware_threads=" << std::thread::hardware_concurrency()
              << "\n\n";

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t < par_threads; t *= 2) sweep.push_back(t);
    sweep.push_back(par_threads);

    util::Table t({"threads", "wall (ms)", "speedup", "queries/s",
                   "vertices_popped"});
    std::vector<ReplayOutcome> outcomes;
    for (const unsigned threads : sweep) {
      // Warm-up pass absorbs first-touch effects; the timed pass follows.
      run_parallel_replay(system, rms, world.catalog(), gate_queries, threads,
                          seed);
      outcomes.push_back(run_parallel_replay(system, rms, world.catalog(),
                                             gate_queries, threads, seed));
      const auto& o = outcomes.back();
      if (!counters_equal(o.counters, outcomes.front().counters)) {
        std::cerr << "parallel: counters diverge at " << threads
                  << " threads (vertices_popped "
                  << outcomes.front().counters.vertices_popped << " vs "
                  << o.counters.vertices_popped << ")\n";
        return 1;
      }
      const double total_queries =
          static_cast<double>(rms.size() * gate_queries);
      t.cell(threads)
          .cell(o.wall_ms, 1)
          .cell(outcomes.front().wall_ms / o.wall_ms, 2)
          .cell(total_queries / (o.wall_ms / 1000.0), 0)
          .cell(o.counters.vertices_popped)
          .end_row();
    }
    emit(t, args);

    if (!par_json.empty()) {
      std::ofstream out(par_json);
      out << "{\n"
          << "  \"schema\": \"p2prm-bench-parallel/1\",\n"
          << "  \"bench\": \"e2_scalability\",\n"
          << "  \"seed\": " << seed << ",\n"
          << "  \"peers\": " << gate_peers << ",\n"
          << "  \"rms\": " << rms.size() << ",\n"
          << "  \"queries_per_rm\": " << gate_queries << ",\n"
          << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
          << ",\n"
          << "  \"counters_identical_across_threads\": true,\n"
          << "  \"vertices_popped\": "
          << outcomes.front().counters.vertices_popped << ",\n"
          << "  \"found\": " << outcomes.front().counters.found << ",\n"
          << "  \"sweep\": [\n";
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        char speedup[64];
        std::snprintf(speedup, sizeof speedup, "%.4g",
                      outcomes.front().wall_ms / outcomes[i].wall_ms);
        char wall[64];
        std::snprintf(wall, sizeof wall, "%.4g", outcomes[i].wall_ms);
        out << "    {\"threads\": " << sweep[i] << ", \"wall_ms\": " << wall
            << ", \"speedup\": " << speedup << "}"
            << (i + 1 < sweep.size() ? ",\n" : "\n");
      }
      out << "  ]\n}\n";
      std::cout << "\nparallel sweep written to " << par_json << "\n";
    }
    std::cout << "\nExpectation: speedup approaches min(threads, "
                 "hardware_threads, active RMs); counters are identical at "
                 "every thread count (the determinism contract).\n";
    return 0;
  }

  if (!json_path.empty()) {
    WorldConfig config;
    config.peers = gate_peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    world.bootstrap();
    core::System& system = world.system();

    // Deterministic RM choice: the one seeing the most services (biggest
    // resource graph), ties broken by lowest peer id.
    core::InfoBase* info = nullptr;
    for (const auto id : system.peer_ids()) {
      auto* node = system.peer(id);
      if (node == nullptr || !node->alive()) continue;
      auto* rm = node->resource_manager();
      if (rm == nullptr) continue;
      if (info == nullptr || rm->info().resource_graph().service_count() >
                                 info->resource_graph().service_count()) {
        info = &rm->info();
      }
    }
    if (info == nullptr || info->all_objects().empty()) {
      std::cerr << "gate: no RM with objects after bootstrap\n";
      return 1;
    }

    const auto nocache = run_gate_queries(system, *info, world.catalog(),
                                          gate_queries, false, seed);
    const auto cached = run_gate_queries(system, *info, world.catalog(),
                                         gate_queries, true, seed);
    char reduction[64];
    std::snprintf(reduction, sizeof reduction, "%.6g",
                  cached.vertices_popped > 0
                      ? static_cast<double>(nocache.vertices_popped) /
                            static_cast<double>(cached.vertices_popped)
                      : 0.0);

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"schema\": \"p2prm-bench-gate/1\",\n"
        << "  \"bench\": \"e2_scalability\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"gate\": {\n"
        << "    \"peers\": " << gate_peers << ",\n"
        << "    \"queries\": " << gate_queries << ",\n";
    write_counters(out, "nocache", nocache, gate_queries);
    out << ",\n";
    write_counters(out, "cache", cached, gate_queries);
    out << ",\n    \"vertices_popped_reduction\": " << reduction << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "gate: " << gate_queries << " queries over " << gate_peers
              << " peers -> vertices_popped " << nocache.vertices_popped
              << " (cache off) vs " << cached.vertices_popped
              << " (cache on), reduction " << reduction << "x, written to "
              << json_path << "\n";
    if (nocache.found != cached.found ||
        nocache.candidates != cached.candidates) {
      std::cerr << "gate: cache on/off result divergence (found "
                << nocache.found << " vs " << cached.found << ", candidates "
                << nocache.candidates << " vs " << cached.candidates << ")\n";
      return 1;
    }
    if (gate_only) return 0;
  }

  print_header("E2", "Claim (§1, §6): the architecture scales well with "
               "respect to the number of peers");
  std::cout << "arrival rate=" << rate_per_peer << "/s per peer, measure="
            << measure_s << "s, seed=" << seed << "\n\n";

  util::Table t({"peers", "domains", "submitted", "goodput", "miss ratio",
                 "cum fairness", "ctrl KB/task", "RM msgs/s/domain",
                 "wall (ms)"});

  for (std::size_t peers = 16; peers <= max_peers; peers *= 2) {
    WorldConfig config;
    config.peers = peers;
    config.system.seed = seed;
    config.system.max_domain_size = 32;
    World world(config);
    const auto wall_start = std::chrono::steady_clock::now();
    world.bootstrap();

    metrics::LoadProbe probe(world.system(), util::seconds(1));
    probe.start();
    world.system().network().reset_stats();
    const auto submitted =
        world.run_poisson(rate_per_peer * static_cast<double>(peers),
                          util::from_seconds(measure_s), util::seconds(60));
    probe.stop();
    const auto wall_stop = std::chrono::steady_clock::now();

    const auto& ledger = world.system().ledger();
    const auto domains = world.system().domains();
    const auto split =
        metrics::split_traffic(world.system().network().stats());
    // Messages an RM handles per second: control messages divided across
    // domains and the measured window.
    const double rm_msgs =
        static_cast<double>(split.control_messages) /
        std::max<std::size_t>(domains.size(), 1) / (measure_s + 60.0);

    t.cell(peers)
        .cell(domains.size())
        .cell(submitted)
        .cell(ledger.goodput(), 4)
        .cell(ledger.miss_ratio(), 4)
        .cell(probe.cumulative_fairness(), 4)
        .cell(control_bytes_per_task(world.system(), submitted) / 1024.0, 2)
        .cell(rm_msgs, 1)
        .cell(std::chrono::duration<double, std::milli>(wall_stop - wall_start)
                  .count(),
              0)
        .end_row();
  }
  emit(t, args);
  std::cout << "\nExpectation: goodput, fairness and ctrl KB/task stay ~flat "
               "as peers grow;\ndomains scale out (one RM per "
               "max_domain_size peers) and per-RM load stays bounded.\n";
  return 0;
}

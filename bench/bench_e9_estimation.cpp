// E9 — execution-time estimation quality (§3.3, §4.4).
//
// "Execution_time_t: the estimated amount of time from initiation to
// completion ... computed as the sum of the processing times of the objects
// and services on the processors and their communication times."
//
// Scores the RM's admission-time prediction against the realized response
// time of every completed task, with the profiler-measurement feedback
// (§4.4) on and off, across load levels. Reports mean absolute percentage
// error, bias, and the resulting deadline performance.
#include <cmath>

#include "exp_common.hpp"

using namespace p2prm;
using namespace p2prm::bench;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t peers = args.get_int("peers", 32);
  const double measure_s = args.get_double("measure-s", 120);
  const std::uint64_t seed = args.get_int("seed", 42);

  print_header("E9", "Claim (§3.3/§4.4): profiler feedback sharpens the "
               "RM's execution-time estimates");
  std::cout << "peers=" << peers << " measure=" << measure_s << "s\n\n";

  util::Table t({"rate (/s)", "estimates", "tasks", "MAPE", "under-forecast",
                 "goodput", "miss ratio"});

  for (const double rate : {0.6, 1.2, 2.0}) {
    for (const bool measured : {false, true}) {
      WorldConfig config;
      config.peers = peers;
      config.system.seed = seed;
      config.system.use_measured_execution_times = measured;
      World world(config);
      world.bootstrap();
      world.run_poisson(rate, util::from_seconds(measure_s),
                        util::seconds(90));

      const auto& ledger = world.system().ledger();
      double ape_sum = 0.0;
      std::size_t scored = 0;
      std::size_t under = 0;  // actual exceeded the estimate (optimism)
      for (std::uint64_t id = 0;; ++id) {
        const auto* r = ledger.record(util::TaskId{id});
        if (r == nullptr) break;
        if (r->status != core::TaskStatus::Completed ||
            r->estimated_execution <= 0) {
          continue;
        }
        const double actual = util::to_seconds(r->response_time());
        const double predicted = util::to_seconds(r->estimated_execution);
        ape_sum += std::abs(actual - predicted) / actual;
        if (actual > predicted * 1.05) ++under;
        ++scored;
      }
      t.cell(rate, 1)
          .cell(measured ? "model+measured" : "model-only")
          .cell(scored)
          .cell(scored ? ape_sum / static_cast<double>(scored) : 0.0, 3)
          .cell(scored ? static_cast<double>(under) /
                             static_cast<double>(scored)
                       : 0.0,
                3)
          .cell(ledger.goodput(), 4)
          .cell(ledger.miss_ratio(), 4)
          .end_row();
    }
  }
  emit(t, args);
  std::cout << "\nExpectation: blending measured execution times cuts the "
               "under-forecast rate (optimistic\npredictions are what turn "
               "into deadline misses) at a small cost in MAPE pessimism.\n";
  return 0;
}

#!/usr/bin/env python3
"""Validate a p2prm metrics JSON document (v2, with a v1 fallback check).

Usage:
    check_metrics_schema.py METRICS.json [--expect-version=2]

Checks, for "p2prm-metrics/2" documents (docs/OBSERVABILITY.md):
  * schema / schema_version header fields
  * every sample has name / kind / labels, and a valid metric name
  * counters and gauges carry `value`; histograms carry per-bucket
    `buckets` (strictly increasing finite bounds, final le == "+Inf"),
    `sum` and `count` with count == sum of bucket counts
  * samples are sorted by (name, labels) and unique — the byte-determinism
    contract the exporters promise

For flat v1 documents (schema_version == 1) it only checks the version
field and that every other value is a number, since that format is pinned
by the bench gate and fault matrix rather than by this script.

Exit status: 0 on success, 1 on validation failure, 2 on usage/IO error.
Stdlib only.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
LABEL_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")
KINDS = ("counter", "gauge", "histogram")


class ValidationError(Exception):
    pass


def fail(msg):
    raise ValidationError(msg)


def check_v1(doc):
    if doc.get("schema_version") != 1:
        fail("v1: schema_version != 1")
    for key, value in doc.items():
        if key == "schema_version":
            continue
        if not isinstance(value, (int, float)):
            fail(f"v1: field {key!r} is not a number")
    return len(doc) - 1


def check_sample(i, sample):
    where = f"metrics[{i}]"
    if not isinstance(sample, dict):
        fail(f"{where}: not an object")
    name = sample.get("name")
    if not isinstance(name, str) or not NAME_RE.match(name):
        fail(f"{where}: bad metric name {name!r}")
    kind = sample.get("kind")
    if kind not in KINDS:
        fail(f"{where} ({name}): bad kind {kind!r}")
    labels = sample.get("labels")
    if not isinstance(labels, dict):
        fail(f"{where} ({name}): labels missing or not an object")
    for k, v in labels.items():
        if not LABEL_KEY_RE.match(k):
            fail(f"{where} ({name}): bad label key {k!r}")
        if not isinstance(v, str):
            fail(f"{where} ({name}): label {k!r} value is not a string")

    if kind in ("counter", "gauge"):
        value = sample.get("value")
        number_ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        # JsonWriter renders non-finite doubles as null.
        if not (number_ok or (kind == "gauge" and value is None)):
            fail(f"{where} ({name}): {kind} value {value!r} is not a number")
        if kind == "counter" and (not isinstance(value, int) or value < 0):
            fail(f"{where} ({name}): counter value {value!r} is not a "
                 "non-negative integer")
        if "buckets" in sample:
            fail(f"{where} ({name}): {kind} must not carry buckets")
        return

    # Histogram.
    buckets = sample.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        fail(f"{where} ({name}): histogram without buckets")
    prev_le = None
    total = 0
    for j, bucket in enumerate(buckets):
        last = j == len(buckets) - 1
        if not isinstance(bucket, dict) or set(bucket) != {"le", "count"}:
            fail(f"{where} ({name}): bucket[{j}] must have exactly le+count")
        le, count = bucket["le"], bucket["count"]
        if last:
            if le != "+Inf":
                fail(f"{where} ({name}): last bucket le is {le!r}, not '+Inf'")
        else:
            if not isinstance(le, (int, float)) or isinstance(le, bool):
                fail(f"{where} ({name}): bucket[{j}] le {le!r} is not a number")
            if prev_le is not None and le <= prev_le:
                fail(f"{where} ({name}): bucket bounds not strictly increasing")
            prev_le = le
        if not isinstance(count, int) or count < 0:
            fail(f"{where} ({name}): bucket[{j}] count {count!r} invalid")
        total += count
    count = sample.get("count")
    if not isinstance(count, int) or count != total:
        fail(f"{where} ({name}): count {count!r} != sum of per-bucket "
             f"counts {total}")
    if not isinstance(sample.get("sum"), (int, float)):
        fail(f"{where} ({name}): histogram sum is not a number")


def check_v2(doc):
    if doc.get("schema") != "p2prm-metrics/2":
        fail(f"schema is {doc.get('schema')!r}, expected 'p2prm-metrics/2'")
    if doc.get("schema_version") != 2:
        fail(f"schema_version is {doc.get('schema_version')!r}, expected 2")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail("metrics missing, not a list, or empty")
    keys = []
    for i, sample in enumerate(metrics):
        check_sample(i, sample)
        keys.append((sample["name"], tuple(sorted(sample["labels"].items()))))
    if keys != sorted(keys):
        fail("samples are not sorted by (name, labels)")
    if len(keys) != len(set(keys)):
        fail("duplicate (name, labels) series")
    return len(metrics)


def main(argv):
    expect = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--expect-version="):
            expect = int(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} METRICS.json [--expect-version=N]",
              file=sys.stderr)
        return 2

    try:
        with open(paths[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{paths[0]}: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict):
        print(f"{paths[0]}: top level is not an object", file=sys.stderr)
        return 1
    version = doc.get("schema_version")
    if expect is not None and version != expect:
        print(f"{paths[0]}: schema_version {version!r} != expected {expect}",
              file=sys.stderr)
        return 1
    try:
        if version == 1:
            n = check_v1(doc)
            print(f"{paths[0]}: OK (v1, {n} fields)")
        elif version == 2:
            n = check_v2(doc)
            print(f"{paths[0]}: OK (p2prm-metrics/2, {n} samples)")
        else:
            fail(f"unsupported schema_version {version!r}")
    except ValidationError as e:
        print(f"{paths[0]}: FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Benchmark regression gate over deterministic work counters and, in
``--wallclock`` mode, median wall-clock speedups.

Counter mode (default) compares a freshly generated gate JSON
(bench_e2_scalability --json=...) against a committed baseline
(BENCH_PR2.json) and fails when a named counter regresses beyond the
tolerance. Counters are simulation quantities — vertices popped,
candidates evaluated, cache hit rate — not wall-clock, so the gate is
robust on noisy shared CI runners.

Wall-clock mode (--wallclock) compares a parallel sweep JSON
(bench_e2_scalability --threads=N --repeats=R --parallel-json=...)
against a committed baseline (BENCH_PR6.json). It is noise-tolerant by
construction:

  * the bench reports the *median* of --repeats timed passes (the gate
    refuses runs with fewer than --min-repeats);
  * speedups are compared with a *relative* tolerance, never absolute
    wall times (machines differ);
  * sweep entries whose thread count exceeds the current runner's
    hardware_threads are skipped, not failed — a 1- or 2-core runner
    reports SKIP instead of flaking;
  * deterministic counter leaves in the same file (vertices_popped,
    micro.*) are still gated the counter way.

--min-speedup accepts "T:X,T:X" pairs (e.g. "4:2.0,8:3.0"): an absolute
speedup floor at thread count T, enforced only when the runner has >= T
hardware threads. This keeps the floor meaningful even when the
committed baseline was produced on a small machine (its "oversubscribed"
flag marks that).

Direction convention (see docs/BENCHMARKS.md):
  * keys ending in ``_rate`` or ``_reduction`` are higher-is-better;
  * every other numeric counter is lower-is-better.

Usage:
  scripts/bench_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]
  scripts/bench_gate.py BENCH_PR6.json sweep.json --wallclock \
      [--wall-tolerance 0.3] [--min-repeats 5] [--min-speedup 4:2.0,8:3.0]

Exit status: 0 when no counter/speedup regresses past tolerance (or the
wall-clock section was hardware-skipped), 1 otherwise.
"""

import argparse
import json
import sys


def flatten(obj, prefix=""):
    """Flatten nested dicts into {"a.b.c": number} — non-numerics dropped."""
    out = {}
    for key, value in obj.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def higher_is_better(key):
    leaf = key.rsplit(".", 1)[-1]
    return leaf.endswith("_rate") or leaf.endswith("_reduction")


# Configuration echoes (peers, queries, seed, ...) describe the run, they
# are not performance counters; comparing them would gate on the harness.
# Wall-clock leaves (_ns/_ms suffixes, speedup) are machine-dependent and
# only ever compared by the --wallclock logic, never as counters.
SKIP_LEAVES = {
    "peers",
    "queries",
    "seed",
    "rms",
    "queries_per_rm",
    "repeats",
    "hardware_threads",
    "threads",
    "speedup",
}
SKIP_SUFFIXES = ("_ns", "_ms")


def skipped_leaf(key):
    leaf = key.rsplit(".", 1)[-1]
    return leaf in SKIP_LEAVES or leaf.endswith(SKIP_SUFFIXES)


def gate_counters(base, cur, tolerance):
    """Returns (rows, failures) for the flattened counter comparison."""
    rows = []
    failures = []
    for key in sorted(base):
        if skipped_leaf(key):
            continue
        if key not in cur:
            failures.append(f"counter missing from current run: {key}")
            continue
        b, c = base[key], cur[key]
        if b == 0.0:
            delta = 0.0 if c == 0.0 else float("inf")
        else:
            delta = (c - b) / abs(b)
        hib = higher_is_better(key)
        # Regression = movement in the bad direction beyond tolerance.
        bad = -delta if hib else delta
        status = "FAIL" if bad > tolerance else "ok"
        if status == "FAIL":
            failures.append(
                f"{key}: baseline {b:g} -> current {c:g} "
                f"({delta:+.1%}, {'higher' if hib else 'lower'}-is-better, "
                f"tolerance {tolerance:.0%})"
            )
        rows.append((key, b, c, delta, status))
    return rows, failures


def print_rows(rows):
    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'counter':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  status")
    for key, b, c, delta, status in rows:
        print(f"{key:<{width}}  {b:>12g}  {c:>12g}  {delta:>+8.1%}  {status}")


def parse_min_speedup(spec):
    """Parses "4:2.0,8:3.0" into {4: 2.0, 8: 3.0}."""
    floors = {}
    if not spec:
        return floors
    for part in spec.split(","):
        threads, floor = part.split(":")
        floors[int(threads)] = float(floor)
    return floors


def gate_wallclock(base_raw, cur_raw, args):
    """Returns a list of failure strings (empty = pass/skip)."""
    failures = []

    repeats = cur_raw.get("repeats", 1)
    if repeats < args.min_repeats:
        return [
            f"current sweep used repeats={repeats}; the wall-clock gate "
            f"requires the median of >= {args.min_repeats} passes "
            f"(rerun with --repeats={args.min_repeats})"
        ]

    cur_sweep = {e["threads"]: e for e in cur_raw.get("sweep", [])}
    base_sweep = {e["threads"]: e for e in base_raw.get("sweep", [])}
    hw = cur_raw.get("hardware_threads", 0)
    base_oversub = base_raw.get("oversubscribed", False)
    floors = parse_min_speedup(args.min_speedup)

    print(f"\nwall-clock gate: runner hardware_threads={hw}, "
          f"baseline oversubscribed={base_oversub}, "
          f"relative tolerance {args.wall_tolerance:.0%}")

    gated = 0
    for threads in sorted(cur_sweep):
        entry = cur_sweep[threads]
        speedup = entry.get("speedup", 0.0)
        if hw and threads > hw:
            print(f"  threads={threads}: SKIP (only {hw} hardware threads)")
            continue
        requirement = []
        # Relative check against the baseline's speedup at the same thread
        # count — unless the baseline itself was produced oversubscribed,
        # in which case its speedups carry no information.
        if not base_oversub and threads in base_sweep:
            need = base_sweep[threads].get("speedup", 0.0) * (
                1.0 - args.wall_tolerance
            )
            requirement.append((f"baseline*(1-tol) = {need:.2f}", need))
        if threads in floors:
            requirement.append((f"--min-speedup floor = {floors[threads]:.2f}",
                                floors[threads]))
        if not requirement:
            print(f"  threads={threads}: speedup {speedup:.2f} (ungated)")
            continue
        gated += 1
        need_desc, need = max(requirement, key=lambda r: r[1])
        status = "ok" if speedup >= need else "FAIL"
        print(f"  threads={threads}: speedup {speedup:.2f} vs {need_desc} "
              f"-> {status}")
        if status == "FAIL":
            failures.append(
                f"speedup at {threads} threads: {speedup:.2f} < {need:.2f} "
                f"({need_desc})"
            )
    if gated == 0:
        print("  SKIP: no sweep entry fits this runner's hardware; "
              "wall-clock comparison skipped (counters above still gated)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional counter regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--wallclock",
        action="store_true",
        help="also gate median wall-clock speedups (parallel sweep JSONs)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression vs baseline "
        "(default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--min-repeats",
        type=int,
        default=5,
        help="reject sweeps produced with fewer timed repeats (default 5)",
    )
    parser.add_argument(
        "--min-speedup",
        default="",
        help='absolute speedup floors as "T:X,T:X" (e.g. "4:2.0,8:3.0"), '
        "each enforced only when the runner has >= T hardware threads",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        base_raw = json.load(f)
    with open(args.current) as f:
        cur_raw = json.load(f)

    rows, failures = gate_counters(
        flatten(base_raw), flatten(cur_raw), args.tolerance
    )
    print_rows(rows)

    if args.wallclock:
        failures += gate_wallclock(base_raw, cur_raw, args)

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ngate passed: {len(rows)} counters within {args.tolerance:.0%}"
          + (" + wall-clock sweep" if args.wallclock else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Benchmark regression gate over deterministic work counters.

Compares a freshly generated gate JSON (bench_e2_scalability --json=...)
against a committed baseline (BENCH_PR2.json) and fails when a named
counter regresses beyond the tolerance. Counters are simulation
quantities — vertices popped, candidates evaluated, cache hit rate — not
wall-clock, so the gate is robust on noisy shared CI runners.

Direction convention (see docs/BENCHMARKS.md):
  * keys ending in ``_rate`` or ``_reduction`` are higher-is-better;
  * every other numeric counter is lower-is-better.

Usage:
  scripts/bench_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]

Exit status: 0 when no counter regresses past tolerance, 1 otherwise.
"""

import argparse
import json
import sys


def flatten(obj, prefix=""):
    """Flatten nested dicts into {"a.b.c": number} — non-numerics dropped."""
    out = {}
    for key, value in obj.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def higher_is_better(key):
    leaf = key.rsplit(".", 1)[-1]
    return leaf.endswith("_rate") or leaf.endswith("_reduction")


# Configuration echoes (peers, queries, seed) describe the run, they are
# not performance counters; comparing them would gate on the harness.
SKIP_LEAVES = {"peers", "queries", "seed"}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = flatten(json.load(f))
    with open(args.current) as f:
        cur = flatten(json.load(f))

    rows = []
    failures = []
    for key in sorted(base):
        if key.rsplit(".", 1)[-1] in SKIP_LEAVES:
            continue
        if key not in cur:
            failures.append(f"counter missing from current run: {key}")
            continue
        b, c = base[key], cur[key]
        if b == 0.0:
            delta = 0.0 if c == 0.0 else float("inf")
        else:
            delta = (c - b) / abs(b)
        hib = higher_is_better(key)
        # Regression = movement in the bad direction beyond tolerance.
        bad = -delta if hib else delta
        status = "FAIL" if bad > args.tolerance else "ok"
        if status == "FAIL":
            failures.append(
                f"{key}: baseline {b:g} -> current {c:g} "
                f"({delta:+.1%}, {'higher' if hib else 'lower'}-is-better, "
                f"tolerance {args.tolerance:.0%})"
            )
        rows.append((key, b, c, delta, status))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'counter':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  status")
    for key, b, c, delta, status in rows:
        print(f"{key:<{width}}  {b:>12g}  {c:>12g}  {delta:>+8.1%}  {status}")

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ngate passed: {len(rows)} counters within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Launch a multi-process p2prm socket deployment and assert its outcome.

Spawns one p2prm_peer process per peer (docs/TRANSPORT.md), all rebuilding
the identical DeploymentPlan from the seed. Optionally kill -9 the founding
Resource Manager (peer 0) mid-run to exercise backup-RM failover over real
sockets — the CI transport-smoke job runs exactly that with 32 processes.

    scripts/launch_peers.py --binary build/tools/p2prm_peer --peers 32 \
        --kill-rm-after 2.5 --log-dir /tmp/p2prm-smoke

Assertions (exit 0 only if all hold):
  * every surviving process exits 0 and prints one valid JSON line,
  * every survivor joined the overlay,
  * with --kill-rm-after: no survivor still follows the dead RM (peer 0),
    and all survivors agree on the takeover RM (the deployment is forced
    into a single domain via --max-domain-size > peers),
  * the survivors completed at least one task between them.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import time


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--binary", default="build/tools/p2prm_peer")
    p.add_argument("--peers", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--base-port", type=int, default=26000)
    p.add_argument("--time-scale", type=float, default=0.2,
                   help="wall-seconds per sim-second")
    p.add_argument("--workload-s", type=int, default=20)
    p.add_argument("--drain-s", type=int, default=25)
    p.add_argument("--task-cap", type=int, default=24)
    p.add_argument("--arrival-rate", type=float, default=0.6)
    p.add_argument("--kill-rm-after", type=float, default=0.0,
                   help="wall-seconds after launch to kill -9 peer 0 "
                        "(0 = never; pick a point inside the workload window)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="wall-seconds before the whole deployment is killed")
    p.add_argument("--log-dir", default="/tmp/p2prm-peers")
    return p.parse_args()


def main() -> int:
    args = parse_args()
    log_dir = pathlib.Path(args.log_dir)
    log_dir.mkdir(parents=True, exist_ok=True)

    # Single domain: failover then has exactly one right answer.
    max_domain_size = args.peers + 8

    procs = {}
    files = []
    for k in range(args.peers):
        out = open(log_dir / f"peer{k}.json", "w")
        err = open(log_dir / f"peer{k}.log", "w")
        files += [out, err]
        cmd = [
            args.binary,
            f"--seed={args.seed}",
            f"--peers={args.peers}",
            f"--peer-index={k}",
            f"--base-port={args.base_port}",
            f"--time-scale={args.time_scale}",
            f"--workload-s={args.workload_s}",
            f"--drain-s={args.drain_s}",
            f"--task-cap={args.task_cap}",
            f"--arrival-rate={args.arrival_rate}",
            f"--max-domain-size={max_domain_size}",
        ]
        procs[k] = subprocess.Popen(cmd, stdout=out, stderr=err)
    print(f"launched {args.peers} peer processes (seed {args.seed}, "
          f"base port {args.base_port})")

    killed_rm = False
    if args.kill_rm_after > 0:
        time.sleep(args.kill_rm_after)
        rm = procs[0]
        if rm.poll() is None:
            rm.send_signal(signal.SIGKILL)
            killed_rm = True
            print(f"kill -9 peer 0 (pid {rm.pid}) "
                  f"at t+{args.kill_rm_after:.1f}s")
        else:
            print(f"ERROR: peer 0 already exited (rc {rm.returncode}) "
                  "before the kill point", file=sys.stderr)

    deadline = time.monotonic() + args.timeout
    for k, proc in procs.items():
        budget = max(0.0, deadline - time.monotonic())
        try:
            proc.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            print(f"ERROR: peer {k} exceeded the {args.timeout:.0f}s "
                  "deadline and was killed", file=sys.stderr)
    for f in files:
        f.close()

    survivors = [k for k in procs if not (killed_rm and k == 0)]
    failures = []
    results = {}
    for k in survivors:
        rc = procs[k].returncode
        if rc != 0:
            failures.append(f"peer {k} exited {rc}")
            continue
        text = (log_dir / f"peer{k}.json").read_text().strip()
        try:
            results[k] = json.loads(text.splitlines()[-1])
        except (json.JSONDecodeError, IndexError):
            failures.append(f"peer {k} printed no valid JSON line: {text!r}")

    for k, r in sorted(results.items()):
        print(f"peer {k:3d}: joined={r['joined']} final_rm={r['final_rm']} "
              f"submitted={r['submitted']} completed={r['completed']} "
              f"rejected={r['rejected']} failed={r['failed']}")

    not_joined = [k for k, r in results.items() if not r["joined"]]
    if not_joined:
        failures.append(f"peers never joined the overlay: {not_joined}")

    if killed_rm and results:
        final_rms = {r["final_rm"] for r in results.values()}
        if 0 in final_rms:
            stuck = [k for k, r in results.items() if r["final_rm"] == 0]
            failures.append(f"peers still follow the dead RM: {stuck}")
        if -1 in final_rms:
            lost = [k for k, r in results.items() if r["final_rm"] == -1]
            failures.append(f"peers lost their RM entirely: {lost}")
        agreed = final_rms - {0, -1}
        if len(agreed) != 1:
            failures.append(
                f"survivors disagree on the takeover RM: {sorted(final_rms)}")
        else:
            print(f"failover: survivors agree on RM {agreed.pop()}")

    completed = sum(r["completed"] for r in results.values())
    if completed == 0:
        failures.append("no survivor completed a single task")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(results)} survivors, {completed} tasks completed"
          + (", failover clean" if killed_rm else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Launch a multi-process p2prm socket deployment and assert its outcome.

Spawns one p2prm_peer process per peer (docs/TRANSPORT.md), all rebuilding
the identical DeploymentPlan from the seed. Optionally kill -9 the founding
Resource Manager (peer 0) mid-run to exercise backup-RM failover over real
sockets — the CI transport-smoke job runs exactly that with ~100 processes
and 5% injected frame loss (--fault-loss), and the transport-fault-matrix
job sweeps {loss, partition, crash-restart} classes over several seeds
(docs/FAULT_MODEL.md).

    scripts/launch_peers.py --binary build/tools/p2prm_peer --peers 32 \
        --kill-rm-after 2.5 --fault-loss 0.05 --log-dir /tmp/p2prm-smoke

Port handling: the requested --base-port range is probed before launch and
shifted upward while any port is taken (a parallel CI job, a TIME_WAIT
leftover); if a peer still loses the bind race at startup ("cannot listen
on port"), the whole deployment is torn down and relaunched on the next
shifted range. Exit 2 only after --port-retries exhausted ranges.

Assertions (exit 0 only if all hold):
  * every surviving process exits 0 and prints one valid JSON line,
  * every survivor joined the overlay — except up to --max-stranded
    stragglers whose loss-delayed join straddled the RM kill (their only
    contact was the dead peer 0, so they end unjoined or as self-founded
    singleton domains; both count against the budget),
  * with --kill-rm-after: no survivor still follows the dead RM (peer 0),
    and all non-stranded survivors agree on the takeover RM (the
    deployment is forced into a single domain via --max-domain-size >
    peers),
  * the survivors completed at least one task between them,
  * with --fault-loss: the shims demonstrably dropped frames, and no
    frame ever reached a decoder corrupted (frames_corrupt stays 0 —
    loopback does not corrupt, so any hit means a framing bug).

--selftest runs the launcher's own unit tests (port probing, the outcome
evaluation rules) and exits; CI invokes it before the real drills.
"""
from __future__ import annotations

import argparse
import errno
import json
import pathlib
import signal
import socket
import subprocess
import sys
import time

# p2prm_peer prints this (via the SocketTransport attach throw) when it
# loses the bind race despite the preflight probe.
LISTEN_FAILURE = "cannot listen on port"


def parse_args(argv=None) -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--binary", default="build/tools/p2prm_peer")
    p.add_argument("--peers", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--base-port", type=int, default=26000)
    p.add_argument("--port-retries", type=int, default=8,
                   help="how many shifted port ranges to try on EADDRINUSE")
    p.add_argument("--time-scale", type=float, default=0.2,
                   help="wall-seconds per sim-second")
    p.add_argument("--workload-s", type=int, default=20)
    p.add_argument("--drain-s", type=int, default=25)
    p.add_argument("--task-cap", type=int, default=24)
    p.add_argument("--arrival-rate", type=float, default=0.6)
    p.add_argument("--kill-rm-after", type=float, default=0.0,
                   help="wall-seconds after launch to kill -9 peer 0 "
                        "(0 = never; pick a point inside the workload window)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="FaultPlan seed passed to every process "
                        "(0 = derive from --seed)")
    p.add_argument("--fault-loss", type=float, default=0.0,
                   help="uniform frame-drop probability injected by every "
                        "process's fault shim")
    p.add_argument("--partition-at-s", type=int, default=2,
                   help="partition start, sim-seconds after workload start")
    p.add_argument("--partition-hold-s", type=int, default=0,
                   help="cut peer 0 off for this many sim-seconds "
                        "(0 = no partition)")
    p.add_argument("--max-stranded", type=int, default=0,
                   help="tolerated stragglers (fault drills only): peers "
                        "that never joined, or that founded a singleton "
                        "domain of themselves after the RM kill. Their only "
                        "contact was peer 0, so a join whose loss-delayed "
                        "retries straddle the kill strands them by design")
    p.add_argument("--peer-log-level", default="",
                   help="forward as p2prm_peer --log-level (e.g. debug); "
                        "per-peer stderr lands in <log-dir>/peerK.log")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="wall-seconds before the whole deployment is killed")
    p.add_argument("--log-dir", default="/tmp/p2prm-peers")
    p.add_argument("--selftest", action="store_true",
                   help="run the launcher's own unit tests and exit")
    return p.parse_args(argv)


def ports_free(base_port: int, count: int) -> bool:
    """True when every port in [base_port, base_port + count) binds."""
    for port in range(base_port, base_port + count):
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                s.bind(("127.0.0.1", port))
            except OSError as e:
                if e.errno in (errno.EADDRINUSE, errno.EACCES):
                    return False
                raise
    return True


def pick_base_port(base_port: int, count: int, retries: int) -> int:
    """First base of a fully free range, shifting upward; -1 if exhausted."""
    stride = count + 16  # headroom so shifted ranges never overlap
    for attempt in range(retries):
        candidate = base_port + attempt * stride
        if candidate + count >= 65536:
            break
        if ports_free(candidate, count):
            return candidate
    return -1


def build_cmd(args: argparse.Namespace, k: int, base_port: int,
              max_domain_size: int) -> list[str]:
    cmd = [
        args.binary,
        f"--seed={args.seed}",
        f"--peers={args.peers}",
        f"--peer-index={k}",
        f"--base-port={base_port}",
        f"--time-scale={args.time_scale}",
        f"--workload-s={args.workload_s}",
        f"--drain-s={args.drain_s}",
        f"--task-cap={args.task_cap}",
        f"--arrival-rate={args.arrival_rate}",
        f"--max-domain-size={max_domain_size}",
    ]
    # Fault flags only when faulty, so a benign drill matches the flags the
    # suite used before the fault layer existed.
    if args.fault_seed:
        cmd.append(f"--fault-seed={args.fault_seed}")
    if args.fault_loss > 0:
        cmd.append(f"--fault-loss={args.fault_loss}")
    if args.partition_hold_s > 0:
        cmd.append(f"--partition-at-s={args.partition_at_s}")
        cmd.append(f"--partition-hold-s={args.partition_hold_s}")
    if args.peer_log_level:
        cmd.append(f"--log-level={args.peer_log_level}")
    return cmd


def evaluate(results: dict[int, dict], killed_rm: bool,
             fault_loss: float, max_stranded: int = 0) -> list[str]:
    """Outcome assertions over the parsed per-process JSON lines.

    Pure so --selftest can drive it with canned fixtures.

    `max_stranded` exists for fault drills: a peer whose (loss-delayed)
    join straddles the RM kill is stranded by design — its only contact
    was peer 0. It shows up either as never joined, or (if its retries
    exhausted after the kill) as the sole founder of a fresh singleton
    domain with itself as RM. CI tolerates a small bounded number of
    such stragglers and excludes them from the takeover checks, which
    only make sense for peers that were ever part of the overlay.
    """
    failures: list[str] = []

    stranded = [k for k, r in sorted(results.items()) if not r["joined"]]
    cohort = {k: r for k, r in results.items() if r["joined"]}

    if killed_rm and cohort:
        # A peer claiming *itself* as RM with no followers founded a
        # singleton domain after its retries dead-ended on the killed
        # peer 0 — a straggler, not a takeover participant. (The real
        # takeover RM also reports itself, but its followers agree.)
        votes: dict[int, int] = {}
        for r in cohort.values():
            votes[r["final_rm"]] = votes.get(r["final_rm"], 0) + 1
        self_founded = [k for k, r in sorted(cohort.items())
                        if r["final_rm"] == k and votes[k] == 1]
        stranded += self_founded
        cohort = {k: r for k, r in cohort.items() if k not in self_founded}

        final_rms = {r["final_rm"] for r in cohort.values()}
        if 0 in final_rms:
            stuck = [k for k, r in cohort.items() if r["final_rm"] == 0]
            failures.append(f"peers still follow the dead RM: {stuck}")
        if -1 in final_rms:
            lost = [k for k, r in cohort.items() if r["final_rm"] == -1]
            failures.append(f"peers lost their RM entirely: {lost}")
        agreed = final_rms - {0, -1}
        if len(agreed) != 1:
            failures.append(
                f"survivors disagree on the takeover RM: {sorted(final_rms)}")

    if len(stranded) > max_stranded:
        failures.append(
            f"stranded peers (never joined, or self-founded after the "
            f"kill): {sorted(stranded)} (tolerance {max_stranded})")

    completed = sum(r["completed"] for r in results.values())
    if completed == 0:
        failures.append("no survivor completed a single task")

    if fault_loss > 0 and results:
        dropped = sum(r.get("fault_dropped", 0) for r in results.values())
        if dropped == 0:
            failures.append(
                "--fault-loss set but no process dropped a frame "
                "(shim not installed?)")

    corrupt = sum(r.get("frames_corrupt", 0) for r in results.values())
    if corrupt > 0:
        failures.append(
            f"{corrupt} corrupt frames on loopback — framing bug, not noise")

    return failures


def launch_once(args: argparse.Namespace, base_port: int,
                log_dir: pathlib.Path):
    """One full deployment. Returns (procs, killed_rm, bind_race_lost)."""
    max_domain_size = args.peers + 8  # single domain: one right failover answer
    procs = {}
    files = []
    for k in range(args.peers):
        out = open(log_dir / f"peer{k}.json", "w")
        err = open(log_dir / f"peer{k}.log", "w")
        files += [out, err]
        procs[k] = subprocess.Popen(
            build_cmd(args, k, base_port, max_domain_size),
            stdout=out, stderr=err)
    print(f"launched {args.peers} peer processes (seed {args.seed}, "
          f"base port {base_port})")

    # Early-failure watch: a peer that loses the bind race exits within a
    # couple of seconds with LISTEN_FAILURE on stderr. Catch it before the
    # kill point so the whole deployment can relaunch on a shifted range.
    grace_deadline = time.monotonic() + min(2.0, args.timeout)
    while time.monotonic() < grace_deadline:
        early = [k for k, p in procs.items() if p.poll() not in (None, 0)]
        if early:
            break
        time.sleep(0.05)
    for k, p in procs.items():
        if p.poll() not in (None, 0):
            text = (log_dir / f"peer{k}.log").read_text()
            if LISTEN_FAILURE in text:
                print(f"peer {k} lost the bind race on range {base_port}+; "
                      "tearing down for a shifted relaunch", file=sys.stderr)
                for proc in procs.values():
                    if proc.poll() is None:
                        proc.kill()
                for proc in procs.values():
                    proc.wait()
                for f in files:
                    f.close()
                return procs, False, True

    killed_rm = False
    if args.kill_rm_after > 0:
        already = time.monotonic() - (grace_deadline - min(2.0, args.timeout))
        time.sleep(max(0.0, args.kill_rm_after - already))
        rm = procs[0]
        if rm.poll() is None:
            rm.send_signal(signal.SIGKILL)
            killed_rm = True
            print(f"kill -9 peer 0 (pid {rm.pid}) "
                  f"at t+{args.kill_rm_after:.1f}s")
        else:
            print(f"ERROR: peer 0 already exited (rc {rm.returncode}) "
                  "before the kill point", file=sys.stderr)

    deadline = time.monotonic() + args.timeout
    for k, proc in procs.items():
        budget = max(0.0, deadline - time.monotonic())
        try:
            proc.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            print(f"ERROR: peer {k} exceeded the {args.timeout:.0f}s "
                  "deadline and was killed", file=sys.stderr)
    for f in files:
        f.close()
    return procs, killed_rm, False


def run_deployment(args: argparse.Namespace) -> int:
    log_dir = pathlib.Path(args.log_dir)
    log_dir.mkdir(parents=True, exist_ok=True)

    procs: dict[int, subprocess.Popen] = {}
    killed_rm = False
    launched = False
    for attempt in range(max(1, args.port_retries)):
        base_port = pick_base_port(args.base_port, args.peers,
                                   args.port_retries)
        if base_port < 0:
            print(f"ERROR: no free range of {args.peers} ports at or above "
                  f"{args.base_port}", file=sys.stderr)
            return 2
        if base_port != args.base_port:
            print(f"port range {args.base_port}+ busy; shifted to "
                  f"{base_port}+")
        procs, killed_rm, bind_race_lost = launch_once(args, base_port,
                                                       log_dir)
        if not bind_race_lost:
            launched = True
            break
        # The loser freed nothing in our range: someone else owns a port.
        # Start the next probe above the contested range.
        args.base_port = base_port + args.peers + 16
    if not launched:
        print(f"ERROR: exhausted {args.port_retries} port ranges",
              file=sys.stderr)
        return 2

    survivors = [k for k in procs if not (killed_rm and k == 0)]
    failures = []
    results = {}
    for k in survivors:
        rc = procs[k].returncode
        if rc != 0:
            failures.append(f"peer {k} exited {rc}")
            continue
        text = (log_dir / f"peer{k}.json").read_text().strip()
        try:
            results[k] = json.loads(text.splitlines()[-1])
        except (json.JSONDecodeError, IndexError):
            failures.append(f"peer {k} printed no valid JSON line: {text!r}")

    for k, r in sorted(results.items()):
        print(f"peer {k:3d}: joined={r['joined']} final_rm={r['final_rm']} "
              f"submitted={r['submitted']} completed={r['completed']} "
              f"rejected={r['rejected']} failed={r['failed']} "
              f"fault_dropped={r.get('fault_dropped', 0)}")

    failures += evaluate(results, killed_rm, args.fault_loss,
                         args.max_stranded)

    # Machine-readable aggregate for the CI artifact.
    summary = {
        "peers": args.peers,
        "seed": args.seed,
        "killed_rm": killed_rm,
        "fault_loss": args.fault_loss,
        "partition_hold_s": args.partition_hold_s,
        "survivors": len(results),
        "completed": sum(r["completed"] for r in results.values()),
        "fault_dropped": sum(r.get("fault_dropped", 0)
                             for r in results.values()),
        "partitioned": sum(r.get("partitioned", 0)
                           for r in results.values()),
        "failures": failures,
    }
    (log_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if killed_rm and results:
        votes: dict[int, int] = {}
        for r in results.values():
            if r["final_rm"] not in (0, -1):
                votes[r["final_rm"]] = votes.get(r["final_rm"], 0) + 1
        takeover = max(votes, key=votes.get)
        print(f"failover: survivors agree on RM {takeover}")
    print(f"\nOK: {len(results)} survivors, {summary['completed']} tasks "
          f"completed" + (", failover clean" if killed_rm else ""))
    return 0


# ---- selftest ---------------------------------------------------------------


def selftest() -> int:
    """Unit tests for the launcher's own logic (no p2prm_peer needed)."""
    import unittest

    class PortProbe(unittest.TestCase):
        def test_free_range_is_accepted(self):
            base = pick_base_port(36000, 4, 4)
            self.assertEqual(base, 36000)

        def test_busy_port_shifts_the_range(self):
            with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
                s.bind(("127.0.0.1", 0))
                busy = s.getsockname()[1]
                # A range starting at the busy port must be rejected and
                # the probe must land on a later, free range.
                self.assertFalse(ports_free(busy, 1))
                shifted = pick_base_port(busy, 1, 8)
                self.assertGreater(shifted, busy)

        def test_exhausted_retries_reports_failure(self):
            self.assertEqual(pick_base_port(65530, 32, 3), -1)

    class Evaluation(unittest.TestCase):
        def ok(self, k=0, **kw):
            r = {"joined": True, "final_rm": 3, "submitted": 2,
                 "completed": 2, "rejected": 0, "failed": 0,
                 "fault_dropped": 0, "partitioned": 0, "frames_corrupt": 0}
            r.update(kw)
            return (k, r)

        def test_clean_run_passes(self):
            results = dict([self.ok(0), self.ok(1)])
            self.assertEqual(evaluate(results, False, 0.0), [])

        def test_unjoined_peer_fails(self):
            results = dict([self.ok(0), self.ok(1, joined=False)])
            self.assertTrue(any("never joined" in f
                                for f in evaluate(results, False, 0.0)))

        def test_unjoined_peer_within_tolerance_passes(self):
            results = dict([self.ok(0), self.ok(1, joined=False,
                                                final_rm=-1, completed=0)])
            self.assertEqual(
                evaluate(results, False, 0.0, max_stranded=1), [])

        def test_unjoined_peers_over_tolerance_fail(self):
            results = dict([self.ok(0),
                            self.ok(1, joined=False, final_rm=-1),
                            self.ok(2, joined=False, final_rm=-1)])
            self.assertTrue(any("stranded" in f
                                for f in evaluate(results, False, 0.0,
                                                  max_stranded=1)))

        def test_tolerated_straggler_is_excluded_from_rm_checks(self):
            # The straggler's final_rm=-1 must not count as "lost the RM"
            # or break takeover agreement: it was never in the overlay.
            results = dict([self.ok(1, final_rm=3), self.ok(2, final_rm=3),
                            self.ok(3, joined=False, final_rm=-1,
                                    completed=0)])
            self.assertEqual(
                evaluate(results, True, 0.0, max_stranded=1), [])

        def test_self_founded_singleton_counts_as_stranded(self):
            # Peer 4 joined late, dead-ended on the killed RM, and founded
            # a fresh domain of itself: tolerated within the budget, fatal
            # without one.
            results = dict([self.ok(1, final_rm=3), self.ok(2, final_rm=3),
                            self.ok(3, final_rm=3),
                            self.ok(4, final_rm=4, completed=0)])
            self.assertEqual(
                evaluate(results, True, 0.0, max_stranded=1), [])
            self.assertTrue(any("stranded" in f
                                for f in evaluate(results, True, 0.0)))

        def test_real_takeover_rm_is_not_a_straggler(self):
            # The elected RM reports itself too — but its followers agree,
            # so it must never be classified as self-founded.
            results = dict([self.ok(3, final_rm=3), self.ok(2, final_rm=3)])
            self.assertEqual(evaluate(results, True, 0.0), [])

        def test_follower_of_dead_rm_fails(self):
            results = dict([self.ok(1), self.ok(2, final_rm=0)])
            self.assertTrue(any("dead RM" in f
                                for f in evaluate(results, True, 0.0)))

        def test_takeover_disagreement_fails(self):
            results = dict([self.ok(1, final_rm=3), self.ok(2, final_rm=4)])
            self.assertTrue(any("disagree" in f
                                for f in evaluate(results, True, 0.0)))

        def test_loss_without_drops_fails(self):
            results = dict([self.ok(0), self.ok(1)])
            self.assertTrue(any("no process dropped" in f
                                for f in evaluate(results, False, 0.05)))

        def test_loss_with_drops_passes(self):
            results = dict([self.ok(0, fault_dropped=17), self.ok(1)])
            self.assertEqual(evaluate(results, False, 0.05), [])

        def test_corrupt_frames_fail(self):
            results = dict([self.ok(0, frames_corrupt=1)])
            self.assertTrue(any("framing bug" in f
                                for f in evaluate(results, False, 0.0)))

        def test_no_completions_fails(self):
            results = dict([self.ok(0, completed=0), self.ok(1, completed=0)])
            self.assertTrue(any("no survivor completed" in f
                                for f in evaluate(results, False, 0.0)))

    suite = unittest.TestSuite()
    loader = unittest.TestLoader()
    suite.addTests(loader.loadTestsFromTestCase(PortProbe))
    suite.addTests(loader.loadTestsFromTestCase(Evaluation))
    runner = unittest.TextTestRunner(verbosity=2)
    return 0 if runner.run(suite).wasSuccessful() else 1


def main() -> int:
    args = parse_args()
    if args.selftest:
        return selftest()
    return run_deployment(args)


if __name__ == "__main__":
    sys.exit(main())

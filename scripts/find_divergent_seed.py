#!/usr/bin/env python3
"""Finds the first seed whose result differs between two fuzz reports.

Usage: scripts/find_divergent_seed.py seq.json par.json

Both inputs are p2prm-fuzz-report/1 JSONs from the same --seeds range run
at different --base-threads. Prints the first divergent seed (and the
differing fields to stderr) and exits 0; prints "none" and exits 1 when
the per-seed results are identical (the divergence is elsewhere in the
report, e.g. a structural difference).
"""

import json
import sys


def by_seed(report):
    return {entry.get("seed"): entry for entry in report.get("results", [])}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        a = by_seed(json.load(f))
    with open(sys.argv[2]) as f:
        b = by_seed(json.load(f))

    for seed in sorted(set(a) | set(b), key=lambda s: (s is None, s)):
        ea, eb = a.get(seed), b.get(seed)
        if ea == eb:
            continue
        if ea is None or eb is None:
            print(f"seed {seed} present in only one report", file=sys.stderr)
        else:
            for key in sorted(set(ea) | set(eb)):
                if ea.get(key) != eb.get(key):
                    print(
                        f"seed {seed} field {key}: "
                        f"{ea.get(key)!r} != {eb.get(key)!r}",
                        file=sys.stderr,
                    )
        print(seed)
        return 0
    print("none")
    return 1


if __name__ == "__main__":
    sys.exit(main())
